"""Delta-based K-means clustering (Listing 3 of the paper).

The Δᵢ set is "nodes which switched centroids at iteration i" (Figure 3).
The plan follows Listing 3's shape:

* base case: the sampled initial centroids (the paper's ``KMSampleAgg`` is
  replaced by a pre-sampled centroid relation — see DESIGN.md);
* recursive case: centroid rows broadcast to every worker and meet the
  (immutable, partitioned) point set in a join whose handler
  :class:`KMAgg` maintains each local point's nearest-centroid assignment;
  whenever a point switches centroid the handler emits coordinate
  adjustments — ``+{x, y, 1}`` to the new centroid and ``-{x, y, 1}`` to
  the old one (exactly Listing 3's ``resBag.add({cid,nx,ny},
  {oldCid,-nx,-ny})``);
* a :class:`CentroidAvg` UDA folds the adjustments into per-centroid
  running (sum_x, sum_y, count) state and outputs the mean;
* the fixpoint (BY centroid) admits moved centroids.  When no point
  switches, no adjustments flow, no centroid moves, and the query reaches
  its fixpoint — "until in the end no points switch centroids".
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.common.deltas import Delta, DeltaOp, update
from repro.common.errors import UDFError
from repro.runtime import (
    ExecOptions,
    PFeedback,
    PFixpoint,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf.aggregates import AggregateSpec, Aggregator, JoinDeltaHandler


class KMAgg(JoinDeltaHandler):
    """Nearest-centroid maintenance over the local point partition.

    Left bucket: local point rows ``(pid, x, y)``.  The handler keeps its
    own centroid map and per-point assignment, updated exactly: when a
    centroid moves toward a point it may capture it; when a point's own
    centroid moves away the nearest centroid is recomputed over all known
    centroids.  Assignment changes emit ``δ(dx, dy, dn)`` adjustments.
    """

    name = "KMAgg"
    in_types = ("Integer", "Double", "Double")
    out_types = ("cid:Integer", "xDiff:Double", "yDiff:Double")
    emits_polarity = frozenset({DeltaOp.UPDATE})  # δ(dx, dy, dn) adjustments
    reads = (0, 1, 2)  # unpacks the full (cid, cx, cy) centroid row

    def __init__(self):
        super().__init__()
        self.centroids: Dict[int, Tuple[float, float]] = {}
        self.assign: Dict[int, Tuple[int, float]] = {}  # pid -> (cid, dist2)
        # Sorted centroid ids, maintained by insort on first sight —
        # centroids move but never disappear, so this is exactly
        # sorted(self.centroids) without re-sorting per nearest-scan.
        self._cids: List[int] = []

    @staticmethod
    def _d2(x, y, cx, cy) -> float:
        # dx*dx instead of dx**2: float.__pow__ goes through libm pow and
        # is several times slower.  Every distance in this handler uses
        # this exact expression so comparisons stay self-consistent.
        dx = x - cx
        dy = y - cy
        return dx * dx + dy * dy

    def _nearest(self, x: float, y: float) -> Tuple[int, float]:
        best_cid, best_d2 = -1, float("inf")
        centroids = self.centroids
        for cid in self._cids:
            cx, cy = centroids[cid]
            dx = x - cx
            dy = y - cy
            d2 = dx * dx + dy * dy
            if d2 < best_d2:
                best_cid, best_d2 = cid, d2
        return best_cid, best_d2

    def update(self, left_bucket, right_bucket, delta, side):
        cid, cx, cy = delta.row
        if cx is None or cy is None:
            # An emptied cluster produced a NULL centroid; freeze it.
            return []
        centroids = self.centroids
        if cid not in centroids:
            insort(self._cids, cid)
        centroids[cid] = (cx, cy)
        out: List[Delta] = []
        adjustments: Dict[int, List[float]] = {}
        assign = self.assign
        nearest = self._nearest

        def adjust(c: int, dx: float, dy: float, dn: int) -> None:
            acc = adjustments.setdefault(c, [0.0, 0.0, 0])
            acc[0] += dx
            acc[1] += dy
            acc[2] += dn

        # Hot loop: every local point per centroid move.  The distance is
        # inlined with _d2's exact expression (identical float results).
        assign_get = assign.get
        for pid, x, y in left_bucket:
            current = assign_get(pid)
            dx = x - cx
            dy = y - cy
            new_d2 = dx * dx + dy * dy
            if current is None:
                # First centroid this point has ever seen.
                assign[pid] = (cid, new_d2)
                adjust(cid, x, y, 1)
                continue
            cur_cid, cur_d2 = current
            if cur_cid == cid:
                if new_d2 <= cur_d2:
                    assign[pid] = (cid, new_d2)
                else:
                    # Our centroid moved away; someone else may be closer.
                    best_cid, best_d2 = nearest(x, y)
                    assign[pid] = (best_cid, best_d2)
                    if best_cid != cid:
                        adjust(cid, -x, -y, -1)
                        adjust(best_cid, x, y, 1)
            elif new_d2 < cur_d2:
                assign[pid] = (cid, new_d2)
                adjust(cur_cid, -x, -y, -1)
                adjust(cid, x, y, 1)
        for c, (dx, dy, dn) in sorted(adjustments.items()):
            if dx or dy or dn:
                out.append(update((c,), payload=(dx, dy, dn)))
        return out


class CentroidAvg(Aggregator):
    """Per-centroid running (sum_x, sum_y, count); result is the mean.

    Plays the role of Listing 3's paired ``avg(xDiff), avg(yDiff)`` — the
    adjustments adjust both the sums and the member count, so the state is
    exactly a streaming average over the current membership.
    """

    name = "centroid_avg"

    def init_state(self):
        return {"sx": 0.0, "sy": 0.0, "n": 0}

    def agg_state(self, state, delta, value, old_value=None):
        if delta.op is not DeltaOp.UPDATE:
            raise UDFError("centroid_avg consumes only δ-adjustment deltas")
        dx, dy, dn = delta.payload
        state["sx"] += dx
        state["sy"] += dy
        state["n"] += dn
        return state

    def agg_result(self, state):
        if state["n"] <= 0:
            return None
        return (state["sx"] / state["n"], state["sy"] / state["n"])


def _expand_centroid(row: tuple) -> tuple:
    cid, pair = row
    if pair is None:
        return (cid, None, None)
    return (cid, pair[0], pair[1])


def kmeans_plan(points_table: str = "points",
                centroids_table: str = "centroids0") -> PhysicalPlan:
    all_key = lambda r: ()
    cid_key = lambda r: (r[0],)
    # Centroid feedback is *broadcast*: every worker's KMAgg must see every
    # centroid move, while the big point set stays partitioned in place.
    join = PJoin(left_key=all_key, right_key=all_key,
                 handler_factory=KMAgg, handler_side=1,
                 children=(
                     PScan(points_table),
                     PRehash.broadcast_of(PFeedback()),
                 ))
    recursive = PProject.over(
        PGroupBy(key_fn=cid_key,
                 specs_factory=lambda: [AggregateSpec(
                     CentroidAvg(), output="mean")],
                 children=(PRehash.by(join, cid_key),)),
        _expand_centroid,
    )
    return PhysicalPlan(PFixpoint(
        key_fn=cid_key,
        semantics="keyed",
        children=(PRehash.by(PScan(centroids_table), cid_key), recursive),
    ))


def run_kmeans(cluster: Cluster, points_table: str = "points",
               centroids_table: str = "centroids0", max_strata: int = 120,
               options: Optional[ExecOptions] = None
               ) -> Tuple[Dict[int, Tuple[float, float]], QueryMetrics]:
    """Execute K-means; returns ({cid: (x, y)}, metrics)."""
    opts = options or ExecOptions()
    opts.max_strata = max_strata
    result = QueryExecutor(cluster, opts).execute(
        kmeans_plan(points_table=points_table,
                    centroids_table=centroids_table))
    return {row[0]: (row[1], row[2]) for row in result.rows}, result.metrics
