"""Query runtime: physical plans and the stratified distributed executor."""

from repro.runtime.executor import (
    ExecOptions,
    FailureSpec,
    QueryExecutor,
    QueryResult,
)
from repro.runtime.termination import (
    after_iterations,
    any_of,
    changed_fraction_below,
    stable_for,
)
from repro.runtime.plan import (
    PApply,
    PCollect,
    PFeedback,
    PFilter,
    PFixpoint,
    PFused,
    PGroupBy,
    PJoin,
    PNode,
    PProject,
    PRehash,
    PScan,
    PUnion,
    PhysicalPlan,
)

__all__ = [
    "QueryExecutor",
    "QueryResult",
    "ExecOptions",
    "FailureSpec",
    "after_iterations",
    "changed_fraction_below",
    "stable_for",
    "any_of",
    "PhysicalPlan",
    "PNode",
    "PScan",
    "PFeedback",
    "PFilter",
    "PProject",
    "PApply",
    "PJoin",
    "PGroupBy",
    "PRehash",
    "PUnion",
    "PFixpoint",
    "PFused",
    "PCollect",
]
