"""Explicit termination conditions for recursive queries (Section 3.4).

"REX allows the user to join or otherwise compare the recursive output from
different strata to compute explicit termination conditions: How many pages
have their PageRank changed by more than 1% between iterations n and n-1?"

The helpers here build ``ExecOptions.termination`` callables that inspect
the fixpoint relations between strata — the programmatic equivalent of the
boolean subquery REX compiles explicit conditions into.  Each returns
``True`` when the query should stop.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

TerminationCheck = Callable[[int, "QueryExecutor"], bool]


def _fixpoint_states(executor) -> Dict[tuple, tuple]:
    state: Dict[tuple, tuple] = {}
    for wp in executor._live_plans():
        if wp.fixpoint is not None:
            state.update(wp.fixpoint.state)
    return state


def after_iterations(n: int) -> TerminationCheck:
    """Stop after ``n`` recursive strata regardless of convergence."""

    def check(stratum, executor):
        return stratum >= n

    return check


def changed_fraction_below(threshold: float, value_index: int = 1,
                           tol: float = 0.01) -> TerminationCheck:
    """Stop when fewer than ``threshold`` (fraction) of keys changed their
    value column by more than ``tol`` (relative) since the last stratum —
    the paper's "how many pages changed by more than 1%?" condition.
    """
    previous: Dict[tuple, tuple] = {}

    def check(stratum, executor):
        nonlocal previous
        current = _fixpoint_states(executor)
        if not current:
            return False
        changed = 0
        for key, row in current.items():
            old = previous.get(key)
            if old is None:
                changed += 1
                continue
            new_v, old_v = row[value_index], old[value_index]
            if old_v is None or new_v is None:
                changed += new_v != old_v
            elif abs(new_v - old_v) > tol * abs(old_v):
                changed += 1
        previous = dict(current)
        return changed / len(current) < threshold

    return check


def stable_for(strata: int) -> TerminationCheck:
    """Stop once the fixpoint relation is bit-identical for ``strata``
    consecutive strata (useful with bag semantics / no-delta runs)."""
    history = {"last": None, "streak": 0}

    def check(stratum, executor):
        current = _fixpoint_states(executor)
        if current == history["last"]:
            history["streak"] += 1
        else:
            history["streak"] = 0
        history["last"] = dict(current)
        return history["streak"] >= strata

    return check


def any_of(*checks: TerminationCheck) -> TerminationCheck:
    """Stop when any of the given conditions holds."""

    def check(stratum, executor):
        return any(c(stratum, executor) for c in checks)

    return check
