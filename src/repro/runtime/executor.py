"""The distributed query driver: stratified execution, termination, recovery.

This module plays the role of the paper's *query requestor node* (Section 4):
it disseminates the plan (instantiates the operator tree on every worker
against a partition snapshot), drives strata, counts the fixpoint "votes"
(admitted-delta counts) to decide between end-of-stratum and end-of-query
punctuation, replicates each stratum's Δᵢ set for incremental recovery
(Section 4.3), and unions the result deltas shipped by the workers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import IterationMetrics, QueryMetrics
from repro.common.deltas import Delta, DeltaOp
from repro.common.errors import ExecutionError, RecoveryError
from repro.common.punctuation import Punctuation
from repro.common.sizes import row_bytes, value_bytes
from repro.net.network import Message, PUNCT_BYTES
from repro.storage.hashing import normalize_key
from repro.operators import (
    ApplyFunction,
    Collect,
    ExchangeReceiver,
    ExecContext,
    FeedbackSource,
    Filter,
    Fixpoint,
    FusedKernel,
    GroupBy,
    HashJoin,
    Project,
    RehashSender,
    ResultSink,
    RuntimeHooks,
    SourceOperator,
    TableScan,
    Union,
)
from repro.runtime.plan import (
    PApply,
    PCollect,
    PFeedback,
    PFilter,
    PFixpoint,
    PFused,
    PGroupBy,
    PJoin,
    PNode,
    PProject,
    PRehash,
    PScan,
    PUnion,
    PhysicalPlan,
)

_attempt_counter = itertools.count()


@dataclass
class FailureSpec:
    """Inject a crash of ``node`` after stratum ``after_stratum`` completes."""

    after_stratum: int
    node: Optional[int] = None  # default: the live node holding most state


@dataclass
class ExecOptions:
    """Execution policy knobs for one query."""

    max_strata: int = 200
    feedback_mode: str = "delta"
    """'delta' feeds only the Δᵢ set into the next stratum (REX delta);
    'full' re-feeds the entire mutable set (REX no-delta)."""
    termination: Optional[Callable[[int, "QueryExecutor"], bool]] = None
    """Explicit termination condition, evaluated after each stratum; the
    implicit condition (no new tuples admitted) always applies too."""
    checkpointing: bool = True
    checkpoint_replication: int = 3
    failure: Optional[object] = None
    """A :class:`FailureSpec`, or a list of them for repeated failures
    (Section 4.3: incremental recovery "guarantees forward progress even
    in the presence of repeated failures")."""
    recovery: str = "incremental"  # or 'restart'

    def failure_specs(self) -> List[FailureSpec]:
        if self.failure is None:
            return []
        if isinstance(self.failure, FailureSpec):
            return [self.failure]
        return list(self.failure)
    collect_result: bool = True
    batch: bool = True
    """Batch-vectorized execution: operators move List[Delta] batches via
    ``push_batch`` instead of one virtual call per delta.  Simulated
    metrics (seconds, bytes, delta counts, strata) are identical in both
    modes; only wall-clock changes.  Set False for the per-tuple path."""
    obs: Optional[object] = None
    """A :class:`repro.obs.ObsContext` to instrument this run with
    (structured tracing, per-operator metrics, EXPLAIN ANALYZE
    attribution).  ``None`` — the default — installs no hooks at all:
    simulated metrics are bit-identical either way, but the disabled path
    also pays zero wall-clock overhead."""
    sanitize: str = "off"
    """Runtime delta-invariant checking (:mod:`repro.analysis.sanitizer`,
    REX200-series): ``'off'`` installs nothing, ``'sample'`` verifies a
    deterministic hash-sample of keys, ``'full'`` verifies everything.
    The sanitizer is passive: it never charges simulated resources, so
    :meth:`QueryMetrics.fingerprint` is bit-identical at every level."""
    sanitize_seed: int = 0
    """Seed mixed into the sanitizer's key-sampling hash."""
    perturb: Optional[object] = None
    """A :class:`repro.analysis.determinism.Perturbation`: reorders
    eligible message deliveries and per-stratum worker iteration order
    under a seed.  Used by the determinism checker to hunt schedule races;
    ``None`` leaves the schedule alone."""
    fuse: bool = True
    """Fused kernels + engine fast paths: collapse maximal stateless
    operator chains into :class:`~repro.operators.fused.FusedKernel`
    pipelines (:mod:`repro.optimizer.fusion`) and enable the
    metric-preserving fabric fast paths — bulk punctuation-fanout
    accounting, the observer-free drain loop, checkpoint route/wire-size
    memoization, and the small-stratum turnover path.  Simulated metrics
    are bit-identical on or off (enforced by tests and the wallclock
    harness); only wall clock changes.  Set False for the unfused
    baseline, mirroring how ``batch`` landed."""
    small_stratum_threshold: int = 64
    """Strata whose admitted Δ-set is at or below this size take the
    small-stratum turnover path when ``fuse`` is on and no
    obs/sanitizer/perturbation hooks are attached: empty feedback and
    checkpoint-replication work is elided instead of walked.  Wall-clock
    knob only; simulated metrics are unchanged at any value."""
    flight: bool = True
    """Keep a :class:`repro.obs.flight.FlightRecorder` for this run (the
    default).  The recorder appends one breadcrumb per stratum boundary
    plus failure/recovery events — no per-tuple hooks — and assembles a
    self-contained JSON post-mortem bundle when the run raises or a
    sanitizer check trips.  It is not an instrumentation hook: the quiet
    fast paths stay armed and simulated metrics are bit-identical with it
    on or off."""
    flight_dir: Optional[str] = None
    """Directory flight bundles are written to on a trigger.  ``None``
    falls back to the ``REX_FLIGHT_DIR`` environment variable; with
    neither set the bundle is kept in memory only
    (``QueryResult.flight.last_bundle`` / the exception's
    ``rex_flight_bundle`` attribute)."""
    absint: bool = True
    """Proof-directed fast paths from the delta-polarity abstract
    interpretation (:mod:`repro.analysis.absint`, REX3xx): run the
    inference over the (fused) physical plan at instantiation and arm
    the operator specializations its proofs license — insert-only /
    update-only group-by folding, the no-retraction keyed-fixpoint loop,
    insert-only join build ports, and replacement-free stateless chains.
    Every fast path preserves outputs and simulated charge multisets
    exactly, so :meth:`QueryMetrics.fingerprint` is bit-identical on or
    off (enforced by tests and the wallclock harness); only wall clock
    changes.  The sanitizer additionally downgrades shadow replay to
    cheap polarity assertions on proven operators — a violated proof is
    escalated to a hard REX307 error."""
    rewrite: bool = True
    """Proof-directed plan rewrites from the column-lineage analysis
    (:mod:`repro.analysis.lineage`, REX4xx): run
    :func:`repro.optimizer.rewrite.rewrite_plan` over the physical tree
    at instantiation (before fusion) and apply the rewrites its facts
    license — filter pushdown below exchanges/projections/extend-applies
    /plain joins, and suffix-truncating projection pushdown through
    exchanges to shrink wire bytes.  Every rewrite requires a proven
    insert-only exact polarity on the stream it touches plus pure,
    exactly-extracted callables, so result rows are identical on or off;
    plans where nothing fires (all three original bench workloads) keep
    :meth:`QueryMetrics.fingerprint` bit-identical as well.  Applied and
    declined candidates are recorded in ``rewrite_decisions``."""
    columnar: bool = False
    """Columnar execution backend: sources emit
    :class:`~repro.operators.blocks.ColumnBlock` batches (column-major
    row/polarity/payload vectors with lineage-pruned column
    materialization) and block-capable operators — Filter, Project,
    ApplyFunction, fused stateless chains, the local half of Rehash, and
    GroupBy — run whole-column ``push_block`` kernels.  Stateful
    operators without a columnar kernel (HashJoin, Fixpoint, the
    exchange receiver) consume block traffic through the block→row
    boundary adapter, so the row path stays the oracle:
    :meth:`QueryMetrics.fingerprint` is bit-identical columnar on or off
    across the fuse×absint×sanitize matrix (enforced by tests and the
    wallclock harness); only wall clock changes.  Requires ``batch``;
    under an attached sanitizer the row path runs regardless (its
    delta-invariant wrappers hook ``push_batch``)."""


@dataclass
class QueryResult:
    rows: List[tuple]
    metrics: QueryMetrics
    obs: Optional[object] = None
    """The run's :class:`repro.obs.ObsContext` (if one was attached), with
    its registry published — ready for ``repro.obs.explain_analyze``."""
    sanitizer: Optional[object] = None
    """The run's :class:`repro.analysis.sanitizer.Sanitizer` (when
    ``ExecOptions.sanitize != 'off'``), carrying the REX200-series
    :class:`~repro.analysis.diagnostics.DiagnosticReport`."""
    suppressed_diagnostics: Optional[object] = None
    """Plan diagnostics that were bypassed (``check=False`` / ``--force``):
    the full :class:`~repro.analysis.diagnostics.DiagnosticReport` the
    run would otherwise have refused on."""
    flight: Optional[object] = None
    """The run's :class:`repro.obs.flight.FlightRecorder` (when
    ``ExecOptions.flight``, the default): the stratum breadcrumb ring,
    plus ``last_bundle``/``last_path`` if a post-mortem dump triggered."""


class _MetricsHooks(RuntimeHooks):
    def __init__(self):
        self.current: Optional[IterationMetrics] = None

    def count_tuples(self, n: int = 1) -> None:
        if self.current is not None:
            self.current.tuples_processed += n

    def count_admitted(self, n: int) -> None:
        pass  # admitted counts are read from the fixpoints directly


class _WorkerPlan:
    """The operator tree instantiated on one worker."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.sources: List[SourceOperator] = []
        self.feedback: Optional[FeedbackSource] = None
        self.fixpoint: Optional[Fixpoint] = None
        self.receivers: List[ExchangeReceiver] = []
        self.checkpoint_entries: Dict[tuple, tuple] = {}
        #: Every operator instantiated on this worker, in build order.
        self.operators: List = []
        #: Table scans inside the fixpoint's recursive branch — the only
        #: scans checkpoint-resume recovery re-reads (base-case scans feed
        #: the fixpoint itself; re-running them would clobber its state).
        self.recursive_scans: List[TableScan] = []


class QueryExecutor:
    """Executes a :class:`PhysicalPlan` on a :class:`Cluster`."""

    def __init__(self, cluster: Cluster, options: Optional[ExecOptions] = None):
        self.cluster = cluster
        self.options = options or ExecOptions()
        self.snapshot = None
        self.worker_plans: Dict[int, _WorkerPlan] = {}
        self.sink: Optional[ResultSink] = None
        self.metrics = QueryMetrics()
        self._hooks = _MetricsHooks()
        self._exchange_names: Dict[int, str] = {}
        self._attempt = next(_attempt_counter)
        self._fixpoint_key_fn = None
        self._plan: Optional[PhysicalPlan] = None
        self.sanitizer = None
        self.flight = None
        #: Per-chain :class:`repro.optimizer.fusion.FusionDecision` records
        #: from the fusion pass (empty when ``fuse=False`` / no chains).
        self.fusion_decisions: List = []
        #: Per-candidate :class:`repro.optimizer.rewrite.RewriteDecision`
        #: records from the rewrite pass (empty when ``rewrite=False`` /
        #: no candidates).
        self.rewrite_decisions: List = []
        # Checkpoint-replication route memo (fuse fast path): fixpoint key
        # -> tuple of replica targets, invalidated on ring-snapshot change.
        self._replica_memo: Dict = {}
        self._replica_memo_version: Optional[int] = None
        # Every fixpoint key ever checkpointed: used to detect, on
        # recovery, ranges whose replicas have all been lost.
        self._checkpointed_keys: set = set()
        # Table name -> frozenset of live column positions (lineage
        # pruning for columnar scans); populated in _instantiate only
        # when the columnar fabric is armed.
        self._scan_live: Dict[str, frozenset] = {}

    # ------------------------------------------------------------------
    # Plan instantiation
    # ------------------------------------------------------------------
    def _live_ids(self) -> List[int]:
        return [w.id for w in self.cluster.alive_workers()]

    def _assign_exchanges(self, root: PNode) -> None:
        counter = itertools.count()
        for node in root.walk():
            if isinstance(node, PRehash):
                self._exchange_names[id(node)] = (
                    f"x{next(counter)}.a{self._attempt}"
                )
        self._collect_exchange = f"collect.a{self._attempt}"
        self._ckpt_exchange = f"ckpt.a{self._attempt}"

    def _instantiate(self, plan: PhysicalPlan) -> None:
        self._plan = plan
        self.snapshot = self.cluster.ring.snapshot()
        for dead in (n for n in self.cluster.node_ids()
                     if not self.cluster.workers[n].alive):
            self.snapshot.mark_failed(dead)
        # Fusion runs after validation/analysis (those see the original
        # plan) and rewrites only what the executor builds from.  The
        # rewritten tree contains fresh node objects, so exchange naming
        # and operator construction both walk the *fused* root.
        exec_root = plan.root
        self.rewrite_decisions = []
        if self.options.rewrite:
            # Rewrites run before fusion so inserted projections join the
            # stateless chains fusion collapses.  Imported lazily like
            # fusion below.
            from repro.optimizer.rewrite import rewrite_plan
            table_arity = {
                name: len(self.cluster.catalog.get(name).schema.fields)
                for name in self.cluster.catalog.names()
            }
            exec_root, self.rewrite_decisions = rewrite_plan(
                exec_root, table_arity=table_arity)
        self.fusion_decisions = []
        if self.options.fuse:
            # Imported lazily: repro.optimizer pulls in planner modules
            # that must not be import-cycled with the runtime package.
            from repro.optimizer.fusion import fuse_plan
            exec_root, self.fusion_decisions = fuse_plan(exec_root)
        self._exec_root = exec_root
        # Abstract interpretation over the tree the executor builds from:
        # its per-node proofs (insert-only inputs, no-retraction loops,
        # replacement-free chains) are pushed onto the operator instances
        # in _make_operator and arm the charge-identical fast paths.
        self._absint_props = None
        if self.options.absint:
            from repro.analysis.absint import infer
            self._absint_props, _ = infer(exec_root)
        self._assign_exchanges(exec_root)
        live = self._live_ids()
        if plan.fixpoint is not None:
            self._fixpoint_key_fn = plan.fixpoint.key_fn
        self.sink = ResultSink(self.cluster.network,
                               exchange=self._collect_exchange,
                               expected_workers=len(live))
        self.metrics.num_nodes = len(live)
        obs = self.options.obs
        if obs is not None:
            obs.instrument_network(self.cluster.network)
        if self.options.sanitize != "off" and self.sanitizer is None:
            # Imported lazily: repro.analysis depends on runtime.plan.
            from repro.analysis.sanitizer import Sanitizer
            self.sanitizer = Sanitizer(self.options.sanitize,
                                       seed=self.options.sanitize_seed)
        if self.sanitizer is not None:
            # Installed after obs so the sanitizer's tee wraps (and keeps
            # forwarding to) the observability hook.
            self.sanitizer.install_network(self.cluster.network)
        if self.options.perturb is not None:
            self.options.perturb.install(self.cluster.network)
        # The fabric fast paths preserve message order and charge
        # multisets exactly, but they bypass the hook points a
        # perturbation rewires — so they arm only on unperturbed runs.
        # (Paths that need observer==None additionally check that live.)
        fuse_fabric = self.options.fuse and self.options.perturb is None
        self.cluster.network.fast_path = fuse_fabric
        # The columnar fabric needs batch mode and no sanitizer: the
        # sanitizer's delta-invariant wrappers hook push_batch, so block
        # traffic would flow around them — the row oracle runs instead
        # (identical fingerprints by construction, pinned by tests).
        # Obs is fine: push_block is instrumented like push_batch.
        columnar_fabric = (self.options.columnar and self.options.batch
                           and self.sanitizer is None
                           and self.options.perturb is None)
        self._scan_live = self._infer_scan_live(exec_root) \
            if columnar_fabric else {}
        for node_id in live:
            worker = self.cluster.worker(node_id)
            if obs is not None:
                obs.instrument_worker(worker)
            ctx = ExecContext(worker, cluster=self.cluster,
                              snapshot=self.snapshot, hooks=self._hooks,
                              batch=self.options.batch, obs=obs,
                              sanitizer=self.sanitizer, fuse=fuse_fabric,
                              columnar=columnar_fabric)
            wp = _WorkerPlan(node_id)
            self.worker_plans[node_id] = wp
            self._build(exec_root, None, ctx, wp, len(live))
            if self.options.checkpointing:
                self._register_checkpoint_handler(node_id, wp)

    def _build(self, node: PNode, parent, ctx: ExecContext,
               wp: _WorkerPlan, n_live: int, in_recursive: bool = False):
        """Instantiate ``node`` on one worker; wire it under ``parent``.

        ``in_recursive`` tracks whether we are inside a fixpoint's
        recursive branch — scans found there are recorded for
        checkpoint-resume recovery.
        """
        if isinstance(node, PRehash):
            # Split into a local receiver feeding the parent and a sender
            # terminating the child pipeline.
            receiver = ExchangeReceiver(self._exchange_names[id(node)],
                                        expected_senders=n_live)
            parent.add_input(receiver)
            receiver.open(ctx)
            wp.receivers.append(receiver)
            wp.operators.append(receiver)
            sender = RehashSender(self._exchange_names[id(node)],
                                  key_fn=node.key_fn, broadcast=node.broadcast)
            sender.open(ctx)
            wp.operators.append(sender)
            self._build(node.children[0], sender, ctx, wp, n_live,
                        in_recursive)
            return

        op = self._make_operator(node, ctx, wp)
        if parent is not None:
            parent.add_input(op)
        op.open(ctx)
        wp.operators.append(op)
        if in_recursive and isinstance(op, TableScan):
            wp.recursive_scans.append(op)
        if isinstance(node, PFixpoint):
            self._build(node.children[0], op, ctx, wp, n_live, False)
            self._build(node.children[1], op, ctx, wp, n_live, True)
            return
        for child in node.children:
            self._build(child, op, ctx, wp, n_live, in_recursive)

    def _infer_scan_live(self, exec_root: PNode) -> Dict[str, frozenset]:
        """Lineage-driven column pruning map for columnar scans.

        Runs the REX4xx column-lineage analysis over the tree the
        executor builds from and keeps, per *table name*, the union of
        the exact ``Live`` sets on its scans' output edges.  A scan
        whose demand is inexact (a row escaped into an opaque consumer)
        disables pruning for that table entirely — full rows are always
        carried; the live set only gates which columns a
        :class:`~repro.operators.blocks.ColumnBlock` will materialize.
        Analysis failures degrade to "no pruning", never to an error.
        """
        try:
            from repro.analysis.lineage import infer_lineage
            table_arity = {
                name: len(self.cluster.catalog.get(name).schema.fields)
                for name in self.cluster.catalog.names()
            }
            facts, _ = infer_lineage(exec_root, table_arity=table_arity)
            live: Dict[str, Optional[frozenset]] = {}
            for node in exec_root.walk():
                if not isinstance(node, PScan):
                    continue
                lin = facts.of(node)
                if lin is None or not lin.live.exact:
                    live[node.table] = None
                elif live.get(node.table, frozenset()) is not None:
                    live[node.table] = (live.get(node.table, frozenset())
                                        | lin.live.cols)
            return {name: cols for name, cols in live.items()
                    if cols is not None}
        except Exception:  # pragma: no cover - analysis must never abort
            return {}

    def _make_operator(self, node: PNode, ctx: ExecContext, wp: _WorkerPlan):
        op = self._create_operator(node, ctx, wp)
        if self._absint_props is not None:
            self._apply_proofs(node, op)
        return op

    def _apply_proofs(self, node: PNode, op) -> None:
        """Arm the fast paths licensed by the abstract interpretation.

        Each attribute set here is a *proof*: the static analysis
        guarantees the corresponding delta kinds can never reach this
        operator, so skipping their handling preserves outputs and
        simulated charge multisets exactly.  The sanitizer asserts the
        proofs at runtime (a contradiction is a hard REX307)."""
        props = self._absint_props.of(node)
        if props is None:
            return
        in_pol = props.in_polarity
        proven = (in_pol is not None and in_pol.exact and in_pol.kinds)
        if isinstance(op, (Filter, Project, ApplyFunction)):
            if proven and DeltaOp.REPLACE not in in_pol.kinds:
                op.proof_no_replace = True
        elif isinstance(op, GroupBy):
            if proven:
                op.proof_polarity = in_pol.kinds
                if in_pol.kinds <= {DeltaOp.INSERT}:
                    op.proof_insert_only = True
                elif in_pol.kinds <= {DeltaOp.UPDATE}:
                    op.proof_update_only = True
        elif isinstance(op, HashJoin):
            if proven:
                op.proof_polarity = in_pol.kinds
            ports = props.port_polarities or ()
            insert_only_ports = frozenset(
                port for port, p in enumerate(ports)
                if not op._uses_handler(port)
                and p.exact and p.kinds and p.kinds <= {DeltaOp.INSERT})
            if insert_only_ports:
                op.proof_insert_only_ports = insert_only_ports
        elif isinstance(op, Fixpoint):
            if proven:
                op.proof_polarity = in_pol.kinds
                if (op.semantics == "keyed" and op.while_handler is None
                        and in_pol.kinds <= {DeltaOp.INSERT,
                                             DeltaOp.REPLACE}):
                    op.proof_no_delete = True
            if props.monotone:
                op.proof_monotone = True
        elif isinstance(op, FusedKernel):
            # Constituents got their own proofs when _make_operator built
            # them; nothing to arm on the kernel shell itself.
            pass

    def _create_operator(self, node: PNode, ctx: ExecContext,
                         wp: _WorkerPlan):
        if isinstance(node, PCollect):
            return Collect(exchange=self._collect_exchange)
        if isinstance(node, PScan):
            scan = TableScan(self.cluster.catalog.get(node.table))
            scan.live_columns = self._scan_live.get(node.table)
            wp.sources.append(scan)
            return scan
        if isinstance(node, PFeedback):
            fs = FeedbackSource()
            if wp.feedback is not None:
                raise ExecutionError("multiple feedback leaves on one worker")
            wp.feedback = fs
            wp.sources.append(fs)
            return fs
        if isinstance(node, PFilter):
            return Filter(node.predicate, udf_calls=node.udf_calls)
        if isinstance(node, PProject):
            return Project(node.row_fn)
        if isinstance(node, PApply):
            return ApplyFunction(node.udf_factory(), node.arg_fn,
                                 mode=node.mode, delta_aware=node.delta_aware)
        if isinstance(node, PJoin):
            handler = (node.handler_factory()
                       if node.handler_factory is not None else None)
            join = HashJoin(node.left_key, node.right_key, handler=handler,
                            handler_side=node.handler_side)
            # Stashed so checkpoint-resume recovery can rebuild a fresh
            # handler when it resets the operator's state.
            join._handler_factory = node.handler_factory
            return join
        if isinstance(node, PGroupBy):
            gb = GroupBy(
                node.key_fn, node.specs_factory(), mode=node.mode,
                clear_states_each_stratum=node.clear_states_each_stratum,
                reset_emissions_each_stratum=node.reset_emissions_each_stratum)
            gb._specs_factory = node.specs_factory
            return gb
        if isinstance(node, PFused):
            # Constituents are plain stateless operators; the kernel opens
            # and wires them itself, so they are not re-registered in
            # ``wp.operators`` (recovery resets stateful operators only).
            return FusedKernel([self._make_operator(c, ctx, wp)
                                for c in node.constituents])
        if isinstance(node, PUnion):
            return Union()
        if isinstance(node, PFixpoint):
            handler = (node.while_handler_factory()
                       if node.while_handler_factory is not None else None)
            fp = Fixpoint(key_fn=node.key_fn, semantics=node.semantics,
                          while_handler=handler,
                          admit_unchanged=node.admit_unchanged)
            wp.fixpoint = fp
            return fp
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Stratified execution
    # ------------------------------------------------------------------
    def execute(self, plan: PhysicalPlan) -> QueryResult:
        """Run the query to completion; returns rows and metrics."""
        flight = None
        if self.options.flight:
            # Imported lazily like the other analysis hooks: the runtime
            # package must not import repro.obs at module load.
            from repro.obs.flight import FlightRecorder
            flight = self.flight = FlightRecorder(
                directory=self.options.flight_dir)
            flight.note("query_start", recursive=plan.is_recursive,
                        attempt=self._attempt)
        self.metrics.startup_seconds = self.cluster.cost.rex_query_startup
        try:
            self._instantiate(plan)
            if flight is not None:
                flight.attach(obs=self.options.obs,
                              sanitizer=self.sanitizer)
            restart = self._run_strata(plan)
            if restart is not None:
                return restart
            self._final_flush()
            rows = self.sink.rows() if self.options.collect_result else []
        except Exception as exc:
            if flight is not None:
                flight.attach(obs=self.options.obs,
                              sanitizer=self.sanitizer)
                flight.record_exception(exc)
                flight.dump("exception", error=exc)
                try:
                    exc.rex_flight_bundle = flight.last_bundle
                    exc.rex_flight_path = flight.last_path
                except AttributeError:  # slotted exception classes
                    pass
            raise
        self.metrics.result_rows = len(rows)
        obs = self.options.obs
        if self.sanitizer is not None and obs is not None:
            self.sanitizer.publish(obs.registry)
        if obs is not None:
            obs.publish()
        if (flight is not None and self.sanitizer is not None
                and self.sanitizer.violations):
            flight.note("sanitizer_trip",
                        violations=self.sanitizer.violations)
            flight.dump("sanitizer", diagnostics=self.sanitizer.report)
        return QueryResult(rows=rows, metrics=self.metrics, obs=obs,
                           sanitizer=self.sanitizer, flight=flight)

    def _run_strata(self, plan: PhysicalPlan) -> Optional[QueryResult]:
        opts = self.options
        obs = opts.obs
        sanitizer = self.sanitizer
        perturb = opts.perturb
        flight = self.flight
        network = self.cluster.network
        recursive = plan.is_recursive
        # Per-node stratum seconds feed the telemetry sampler's skew view;
        # collected only when a sampler is actually attached.
        want_node_seconds = obs is not None and obs.telemetry is not None
        # Hoisted out of the stratum loop: the live-plan list (recomputed
        # only after a failure changes membership), the failure schedule,
        # and the per-batch obs/checkpoint branch structure that used to
        # be re-evaluated every stratum.
        failures_by_stratum: Dict[int, List[FailureSpec]] = {}
        for spec in opts.failure_specs():
            failures_by_stratum.setdefault(spec.after_stratum,
                                           []).append(spec)
        # Quiet run: no hooks anywhere in the stratum loop.  Only then may
        # the small-stratum turnover below elide work — and only work that
        # is a no-op on simulated metrics by construction (an empty Δ-set
        # under delta feedback has nothing to move or replicate).
        quiet = (opts.fuse and obs is None and sanitizer is None
                 and perturb is None and not failures_by_stratum)
        small_threshold = opts.small_stratum_threshold
        delta_feedback = opts.feedback_mode == "delta"
        plans = self._live_plans()
        stratum = 0
        while True:
            it = self.metrics.begin_iteration(stratum)
            self._hooks.current = it
            if obs is not None:
                obs.begin_stratum(stratum)
            bytes_before = network.total_bytes
            ordered = (plans if perturb is None
                       else perturb.worker_order(plans, stratum))
            for wp in ordered:
                for source in wp.sources:
                    source.run_stratum(stratum)
            network.drain()

            admitted = 0
            mutable = 0
            for wp in plans:
                fp = wp.fixpoint
                if fp is not None:
                    admitted += fp.admitted_this_stratum
                    mutable += fp.mutable_size()
            it.delta_count = admitted
            it.mutable_size = mutable

            pending: Dict[int, List[Delta]] = {}
            if recursive:
                small = quiet and admitted <= small_threshold
                if not (small and delta_feedback and admitted == 0):
                    # Small-stratum fast path, terminal case: with delta
                    # feedback, zero admissions means every fixpoint's
                    # pending list is empty — collecting and replicating
                    # them would move nothing.
                    for wp in plans:
                        if wp.fixpoint:
                            pending[wp.worker_id] = wp.fixpoint.take_pending(
                                opts.feedback_mode)
                if opts.checkpointing:
                    if obs is not None:
                        # Checkpoint traffic is control-plane cost: charge
                        # it to a named system activity, not an operator.
                        with obs.system_frame("(checkpoint)"):
                            self._replicate_checkpoints(pending)
                            network.drain()
                    elif self._replicate_checkpoints(pending):
                        network.drain()
            if sanitizer is not None:
                # The fabric is quiescent: verify exchange conservation.
                sanitizer.end_stratum(stratum)

            node_seconds = {} if want_node_seconds else None
            it.seconds = (self.cluster.end_stratum_wall_time(node_seconds)
                          + self.cluster.cost.rex_stratum_overhead)
            it.bytes_sent = network.total_bytes - bytes_before
            if obs is not None:
                obs.end_stratum(stratum, it.seconds, it.bytes_sent,
                                it.delta_count, it.mutable_size,
                                it.tuples_processed,
                                node_seconds=node_seconds)
            if flight is not None:
                flight.on_stratum(stratum, it.seconds, it.bytes_sent,
                                  it.delta_count, it.mutable_size,
                                  it.tuples_processed)

            due = failures_by_stratum.get(stratum)
            if due:
                for spec in due:
                    outcome = self._handle_failure(plan, spec, pending)
                    if outcome is not None:
                        return outcome  # restart path returns fresh results
                plans = self._live_plans()

            if not recursive:
                return None
            stop = (admitted == 0
                    or stratum + 1 >= opts.max_strata
                    or (opts.termination is not None
                        and opts.termination(stratum, self)))
            if stop:
                return None
            for wp in plans:
                if wp.feedback is not None and wp.worker_id in pending:
                    wp.feedback.deposit(pending[wp.worker_id])
            stratum += 1

    def _final_flush(self) -> None:
        """Send end-of-query punctuation through every pipeline; stateful
        operators flush final results to the collect sink."""
        final = Punctuation.end_of_query(self.metrics.num_iterations)
        for wp in self._live_plans():
            for source in wp.sources:
                source.parent.on_punctuation(final, source.parent_port)
        self.cluster.network.drain()
        if self.metrics.iterations:
            self.metrics.iterations[-1].seconds += (
                self.cluster.end_stratum_wall_time())
        if self.options.collect_result and not self.sink.done:
            raise ExecutionError("result sink did not receive all final "
                                 "punctuation")

    def _live_plans(self) -> List[_WorkerPlan]:
        return [self.worker_plans[n] for n in self._live_ids()
                if n in self.worker_plans]

    # ------------------------------------------------------------------
    # Incremental checkpoints (Section 4.3)
    # ------------------------------------------------------------------
    def _register_checkpoint_handler(self, node_id: int, wp: _WorkerPlan) -> None:
        def handle(msg: Message) -> None:
            for delta in msg.deltas or ():
                key = (self._fixpoint_key_fn(delta.row)
                       if self._fixpoint_key_fn else delta.row)
                if delta.op is DeltaOp.DELETE:
                    wp.checkpoint_entries.pop(key, None)
                else:
                    wp.checkpoint_entries[key] = delta.row

        self.cluster.network.register(node_id, self._ckpt_exchange, handle)

    def _replicate_checkpoints(self, pending: Dict[int, List[Delta]]) -> int:
        """Replicate each worker's Δᵢ set to its replica machines.

        Returns the number of messages shipped (so the caller can skip
        draining an untouched fabric).  With ``fuse`` on, replica routes
        are memoized per fixpoint key (invalidated when the ring snapshot
        changes) and each delta's wire size is computed once and carried
        on the message as a precomputed size segment —
        :meth:`~repro.net.network.Message.size_bytes` would recount the
        identical bytes delta by delta.
        """
        if self._fixpoint_key_fn is None:
            return 0
        rf = self.options.checkpoint_replication
        if rf < 2:
            return 0
        key_fn = self._fixpoint_key_fn
        original_replicas = self.snapshot.original_replicas
        add_checkpointed = self._checkpointed_keys.add
        obs = self.options.obs
        sanitizer = self.sanitizer
        network = self.cluster.network
        send = network.send
        sent = 0
        memo = None
        if self.options.fuse:
            memo = self._replica_memo
            if self._replica_memo_version != self.snapshot.version:
                memo.clear()
                self._replica_memo_version = self.snapshot.version
        for worker_id, deltas in pending.items():
            batches: Dict[int, List[Delta]] = {}
            if memo is not None:
                nbytes_by_dst: Dict[int, int] = {}
                for delta in deltas:
                    key = key_fn(delta.row)
                    add_checkpointed(key)
                    if sanitizer is not None:
                        sanitizer.record_checkpoint(key, delta)
                    replicas = memo.get(key)
                    if replicas is None:
                        replicas = memo[key] = tuple(
                            original_replicas(normalize_key(key), rf)[1:])
                    nbytes = 1 + row_bytes(delta.row)
                    if delta.old is not None:
                        nbytes += row_bytes(delta.old)
                    if delta.payload is not None:
                        nbytes += value_bytes(delta.payload)
                    for replica in replicas:
                        if replica != worker_id:
                            batch = batches.get(replica)
                            if batch is None:
                                batches[replica] = [delta]
                                nbytes_by_dst[replica] = nbytes
                            else:
                                batch.append(delta)
                                nbytes_by_dst[replica] += nbytes
                for dst, batch in batches.items():
                    send(Message(
                        src=worker_id, dst=dst,
                        exchange=self._ckpt_exchange, deltas=batch,
                        meta=nbytes_by_dst[dst] + PUNCT_BYTES,
                    ))
                    sent += 1
            else:
                for delta in deltas:
                    key = key_fn(delta.row)
                    add_checkpointed(key)
                    if sanitizer is not None:
                        sanitizer.record_checkpoint(key, delta)
                    for replica in original_replicas(
                            normalize_key(key), rf)[1:]:
                        if replica != worker_id:
                            batches.setdefault(replica, []).append(delta)
                for dst, batch in batches.items():
                    send(Message(
                        src=worker_id, dst=dst,
                        exchange=self._ckpt_exchange, deltas=batch,
                    ))
                    sent += 1
            if obs is not None and deltas:
                obs.checkpoint_write(worker_id, len(deltas), len(batches))
        return sent

    # ------------------------------------------------------------------
    # Failure handling (Section 4.3, Figure 12)
    # ------------------------------------------------------------------
    def _handle_failure(self, plan: PhysicalPlan, spec: FailureSpec,
                        pending: Dict[int, List[Delta]]) -> Optional[QueryResult]:
        victim = spec.node
        if victim is None:
            live = self._live_plans()
            victim = max(live, key=lambda wp: (
                wp.fixpoint.mutable_size() if wp.fixpoint else 0,
                wp.worker_id)).worker_id
        self.cluster.fail_node(victim)
        self.snapshot.mark_failed(victim)
        pending.pop(victim, None)
        self.worker_plans.pop(victim, None)
        n_live = len(self._live_ids())
        for wp in self._live_plans():
            for receiver in wp.receivers:
                receiver.set_expected_senders(n_live)
        self.sink.set_expected_workers(n_live)
        self.metrics.recovery_seconds += self.cluster.cost.failure_detection
        if self.flight is not None:
            self.flight.note("node_failure", node=victim,
                             after_stratum=spec.after_stratum,
                             recovery=self.options.recovery)

        if self.options.recovery == "restart":
            return self._restart(plan)
        obs = self.options.obs
        if self._plan_replays_exactly(plan):
            def recover():
                self._recover_incrementally(victim)
        else:
            def recover():
                self._resume_from_checkpoint(victim, pending)
        if obs is not None:
            with obs.system_frame("(recovery)"):
                recover()
        else:
            recover()
        if self.flight is not None:
            self.flight.note("recovered", node=victim)
        return None

    def _plan_replays_exactly(self, plan: PhysicalPlan) -> bool:
        """True when every stateful handler in the plan is replay-idempotent
        (min/max-style refinement algebras): restored checkpoint rows can
        then be replayed through surviving downstream operator state without
        double-counting, so :meth:`_recover_incrementally` is exact.
        Anything else — sums, averages — goes through
        :meth:`_resume_from_checkpoint`, which resets downstream state and
        recomputes it from the restored mutable set instead.
        """
        for node in plan.root.walk():
            if isinstance(node, PFixpoint):
                if node.while_handler_factory is not None:
                    handler = node.while_handler_factory()
                    if not getattr(handler, "replay_idempotent", False):
                        return False
            elif isinstance(node, PJoin):
                if node.handler_factory is not None:
                    handler = node.handler_factory()
                    if not getattr(handler, "replay_idempotent", False):
                        return False
            elif isinstance(node, PGroupBy):
                if node.clear_states_each_stratum:
                    continue  # rebuilt from scratch every stratum anyway
                for spec in node.specs_factory():
                    if not getattr(spec.aggregator, "replay_idempotent",
                                   False):
                        return False
        return True

    def _restart(self, plan: PhysicalPlan) -> QueryResult:
        """Discard all progress; re-run the query on the surviving nodes."""
        wasted = self.metrics.total_seconds()
        fresh_options = ExecOptions(
            max_strata=self.options.max_strata,
            feedback_mode=self.options.feedback_mode,
            termination=self.options.termination,
            checkpointing=self.options.checkpointing,
            checkpoint_replication=self.options.checkpoint_replication,
            failure=None,
            recovery=self.options.recovery,
            collect_result=self.options.collect_result,
            batch=self.options.batch,
            obs=self.options.obs,
            sanitize=self.options.sanitize,
            sanitize_seed=self.options.sanitize_seed,
            perturb=self.options.perturb,
            fuse=self.options.fuse,
            small_stratum_threshold=self.options.small_stratum_threshold,
            flight=self.options.flight,
            flight_dir=self.options.flight_dir,
            absint=self.options.absint,
            rewrite=self.options.rewrite,
            columnar=self.options.columnar,
        )
        retry = QueryExecutor(self.cluster, fresh_options)
        result = retry.execute(plan)
        result.metrics.recovery_seconds += wasted
        return result

    def _recover_incrementally(self, victim: int) -> None:
        """Resume from the last completed stratum using replicated Δ-sets.

        Takeover nodes (a) re-read the victim's immutable table partitions
        from storage replicas into their local pipelines (rebuilding join
        state), and (b) restore the checkpointed mutable rows for the failed
        ranges into their fixpoint state, replaying them through the
        recursive pipeline in the next stratum so downstream operator state
        catches up.  Correct for refinement algebras that are monotone and
        idempotent (min/max-style, e.g. shortest paths — the algorithm class
        the paper's recovery experiment uses); use restart recovery for
        non-idempotent aggregates such as PageRank sums.
        """
        # A key's *pre-failure* owner is the first of its original
        # replicas that was still alive before this crash — which may be a
        # takeover node from an earlier failure, so repeated failures
        # re-migrate inherited ranges correctly ("forward progress even in
        # the case of repeated failures", Section 4.3).
        dead = set(self.snapshot.nodes) - set(self.snapshot.live_nodes())
        previously_failed = dead - {victim}

        def pre_failure_owner(ring_key) -> int:
            owners = self.snapshot.original_replicas(
                ring_key, len(self.snapshot.nodes))
            for owner in owners:
                if owner not in previously_failed:
                    return owner
            raise RecoveryError("all replicas of a key range are lost")

        # (a) immutable data hand-off from storage replicas: every row the
        # victim was serving (its own ranges plus any it inherited).
        reread_total = 0
        for table_name in self._plan.tables():
            table = self.cluster.catalog.get(table_name)
            key_index = table._key_index
            lost_rows = []
            # Sorted: set order is unordered and these rows feed emission
            # order downstream (the sanitizer's REX106 lint catches this).
            for dead_node in sorted(dead):
                lost_rows.extend(table.primaries.get(dead_node) or ())
            moved = 0
            for row in lost_rows:
                ring_key = (row[key_index] if key_index is not None
                            else None)
                if pre_failure_owner(ring_key) != victim:
                    continue
                if table.replication < 2:
                    raise RecoveryError(
                        f"table {table.name} has no replicas; data on "
                        f"node {victim} is unrecoverable")
                node_id = self.snapshot.replicas(ring_key, 1)[0]
                wp = self.worker_plans.get(node_id)
                if wp is None:
                    continue
                worker = self.cluster.worker(node_id)
                worker.charge_disk_bytes(64)
                for scan in wp.sources:
                    if (isinstance(scan, TableScan)
                            and scan.table.name == table_name):
                        scan.emit(Delta(DeltaOp.INSERT, row))
                moved += 1
            reread_total += moved
        self.cluster.network.drain()

        # (b) mutable-state hand-off from checkpoint replicas.
        sanitizer = self.sanitizer
        restored_keys: set = set()
        restored = 0
        for wp in self._live_plans():
            if wp.fixpoint is None:
                continue
            for key, row in list(wp.checkpoint_entries.items()):
                ring_key = normalize_key(key)
                if pre_failure_owner(ring_key) != victim:
                    continue
                if self.snapshot.replicas(ring_key, 1)[0] != wp.worker_id:
                    continue
                if sanitizer is not None:
                    sanitizer.verify_restored(key, row)
                wp.fixpoint.state[key] = row
                if wp.feedback is not None:
                    wp.feedback.deposit([Delta(DeltaOp.INSERT, row)])
                restored_keys.add(key)
                restored += 1
        # Coverage check: a checkpointed key whose pre-failure owner was
        # the victim must have been restored somewhere — otherwise every
        # replica of its range is gone and the mutable state is lost.
        for key in self._checkpointed_keys:
            ring_key = normalize_key(key)
            if (pre_failure_owner(ring_key) == victim
                    and key not in restored_keys):
                raise RecoveryError(
                    f"mutable state for key {key!r} is unrecoverable: all "
                    f"{self.options.checkpoint_replication} checkpoint "
                    "replicas have failed (increase "
                    "checkpoint_replication or use restart recovery)")
        if restored == 0 and self._fixpoint_key_fn is not None:
            # The victim held state but nothing could be restored: either
            # checkpointing was off or replication was insufficient.
            if not self.options.checkpointing:
                raise RecoveryError(
                    "incremental recovery requires checkpointing=True"
                )
        if self.options.obs is not None:
            self.options.obs.checkpoint_restore(victim, restored,
                                                reread_total)
        self.metrics.recovery_seconds += (
            self.cluster.end_stratum_wall_time())

    def _resume_from_checkpoint(self, victim: int,
                                pending: Dict[int, List[Delta]]) -> None:
        """Recovery for plans whose handlers are *not* replay-idempotent
        (PageRank's sums, K-means' averages): replaying restored rows into
        surviving downstream state would double-count contributions, so
        instead we (a) reset every downstream mutable operator (group-by
        states, join buckets, fresh delta handlers), (b) re-read the
        recursive branch's immutable scans to rebuild join build sides,
        (c) restore the victim's checkpointed mutable rows into the
        surviving fixpoints, and (d) re-feed the *entire* mutable set into
        the next stratum.  The next stratum is then a from-scratch
        recomputation over the checkpointed vector — exactly one Jacobi /
        Lloyd step, as if the query had been started from that state.
        """
        snapshot = self.snapshot
        dead = sorted(set(snapshot.nodes) - set(snapshot.live_nodes()))
        previously_failed = set(dead) - {victim}

        def pre_failure_owner(ring_key) -> int:
            owners = snapshot.original_replicas(
                ring_key, len(snapshot.nodes))
            for owner in owners:
                if owner not in previously_failed:
                    return owner
            raise RecoveryError("all replicas of a key range are lost")

        sanitizer = self.sanitizer
        # (a) reset downstream mutable state on every survivor.
        for wp in self._live_plans():
            for op in wp.operators:
                if isinstance(op, GroupBy):
                    op.groups.clear()
                    op._dirty.clear()
                    factory = getattr(op, "_specs_factory", None)
                    if factory is not None:
                        op.specs = list(factory())
                elif isinstance(op, HashJoin):
                    op.buckets.clear()
                    factory = getattr(op, "_handler_factory", None)
                    if op.handler is not None and factory is not None:
                        op.handler = factory()
                if sanitizer is not None:
                    sanitizer.reset_operator(op)

        # (b) rebuild immutable join state: re-read every recursive-branch
        # scan (each survivor's own partition plus takeover ranges of the
        # dead) without punctuation.  Base-case scans are *not* re-run —
        # their output feeds the fixpoint, whose state we are restoring.
        reread_total = 0
        for wp in self._live_plans():
            for scan in wp.recursive_scans:
                scan.reemit_for_recovery()
                reread_total += len(scan.table.partition(wp.worker_id))
        self.cluster.network.drain()
        # Rows routed through a rehash must ship now, not sit in sender
        # batch buffers until the next punctuation.
        for wp in self._live_plans():
            for op in wp.operators:
                if isinstance(op, RehashSender):
                    for dst in list(op._buffers):
                        op._flush(dst)
        self.cluster.network.drain()

        # (c) restore the checkpointed mutable rows for the victim's ranges.
        restored_keys: set = set()
        restored = 0
        for wp in self._live_plans():
            if wp.fixpoint is None:
                continue
            for key, row in list(wp.checkpoint_entries.items()):
                ring_key = normalize_key(key)
                if pre_failure_owner(ring_key) != victim:
                    continue
                if snapshot.replicas(ring_key, 1)[0] != wp.worker_id:
                    continue
                if sanitizer is not None:
                    sanitizer.verify_restored(key, row)
                wp.fixpoint.state[key] = row
                restored_keys.add(key)
                restored += 1
        for key in self._checkpointed_keys:
            ring_key = normalize_key(key)
            if (pre_failure_owner(ring_key) == victim
                    and key not in restored_keys):
                raise RecoveryError(
                    f"mutable state for key {key!r} is unrecoverable: all "
                    f"{self.options.checkpoint_replication} checkpoint "
                    "replicas have failed (increase "
                    "checkpoint_replication or use restart recovery)")
        if restored == 0 and self._fixpoint_key_fn is not None:
            if not self.options.checkpointing:
                raise RecoveryError(
                    "incremental recovery requires checkpointing=True"
                )

        # (d) re-feed the full mutable set: with downstream state reset,
        # the Δ-sets pending from the failed stratum are superseded.
        for wp in self._live_plans():
            if wp.fixpoint is not None and wp.feedback is not None:
                pending[wp.worker_id] = [
                    Delta(DeltaOp.INSERT, row)
                    for row in wp.fixpoint.state.values()
                ]
        if self.options.obs is not None:
            self.options.obs.checkpoint_restore(victim, restored,
                                                reread_total)
        self.metrics.recovery_seconds += (
            self.cluster.end_stratum_wall_time())
