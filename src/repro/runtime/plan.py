"""Physical plan descriptors.

A plan is a tree of immutable node descriptors; the executor instantiates a
fresh operator tree from it on every worker (and again from scratch after a
restart-based recovery).  Anything holding per-worker mutable state —
aggregators, join/while delta handlers — is therefore described by a
*factory* (a zero-argument callable returning a fresh instance), never by a
shared instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError  # noqa: F401 — re-exported for callers


class PNode:
    """Base physical-plan node; ``children`` feed into this node."""

    children: Tuple["PNode", ...] = ()

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class PScan(PNode):
    """Scan a catalog table's local partition."""

    table: str
    children: Tuple[PNode, ...] = ()


@dataclass(frozen=True)
class PFeedback(PNode):
    """The fixpoint receiver: leaf of the recursive branch."""

    children: Tuple[PNode, ...] = ()


@dataclass(frozen=True)
class PFilter(PNode):
    predicate: Callable[[tuple], Any]
    children: Tuple[PNode, ...] = ()
    #: UDF invocations per tuple inside the predicate (charged as UDC cost).
    udf_calls: int = 0

    @classmethod
    def over(cls, child: PNode, predicate) -> "PFilter":
        return cls(predicate=predicate, children=(child,))


@dataclass(frozen=True)
class PProject(PNode):
    row_fn: Callable[[tuple], tuple]
    children: Tuple[PNode, ...] = ()

    @classmethod
    def over(cls, child: PNode, row_fn) -> "PProject":
        return cls(row_fn=row_fn, children=(child,))


@dataclass(frozen=True)
class PApply(PNode):
    """applyFunction over a UDF (``udf_factory`` returns the UDF object)."""

    udf_factory: Callable[[], Any]
    arg_fn: Callable[[tuple], tuple]
    mode: str = "extend"
    delta_aware: bool = False
    children: Tuple[PNode, ...] = ()


@dataclass(frozen=True)
class PJoin(PNode):
    """Pipelined hash join; children = (left, right)."""

    left_key: Callable[[tuple], tuple]
    right_key: Callable[[tuple], tuple]
    handler_factory: Optional[Callable[[], Any]] = None
    handler_side: Optional[int] = 1
    children: Tuple[PNode, ...] = ()


@dataclass(frozen=True)
class PGroupBy(PNode):
    """Group-by; ``specs_factory`` returns fresh AggregateSpec objects."""

    key_fn: Callable[[tuple], tuple]
    specs_factory: Callable[[], Sequence[Any]]
    mode: str = "stratum"
    clear_states_each_stratum: bool = False
    reset_emissions_each_stratum: bool = False
    children: Tuple[PNode, ...] = ()


@dataclass(frozen=True)
class PRehash(PNode):
    """Cross-worker repartition by key (or broadcast)."""

    key_fn: Optional[Callable[[tuple], tuple]] = None
    broadcast: bool = False
    children: Tuple[PNode, ...] = ()

    @classmethod
    def by(cls, child: PNode, key_fn) -> "PRehash":
        return cls(key_fn=key_fn, children=(child,))

    @classmethod
    def broadcast_of(cls, child: PNode) -> "PRehash":
        return cls(broadcast=True, children=(child,))


@dataclass(frozen=True)
class PFused(PNode):
    """A maximal chain of stateless operators collapsed into one kernel.

    ``constituents`` are the original chain nodes in *data-flow* order
    (deepest child first), stored with their children stripped so a plan
    walk sees each constituent exactly once.  ``children`` are the inputs
    of the chain's deepest node.  Produced by
    :func:`repro.optimizer.fusion.fuse_plan`; never built by hand.
    """

    constituents: Tuple[PNode, ...] = ()
    children: Tuple[PNode, ...] = ()

    def walk(self):
        yield self
        for constituent in self.constituents:
            yield constituent
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class PUnion(PNode):
    children: Tuple[PNode, ...] = ()


@dataclass(frozen=True)
class PFixpoint(PNode):
    """Fixpoint; children = (base_case, recursive_case).

    ``key_fn`` is both the duplicate-elimination key and the partitioning
    key for Δ-set checkpoints.  ``while_handler_factory`` overrides the
    built-in keyed/set semantics with a user while-state handler.
    """

    key_fn: Optional[Callable[[tuple], tuple]] = None
    semantics: str = "keyed"
    while_handler_factory: Optional[Callable[[], Any]] = None
    admit_unchanged: bool = False
    children: Tuple[PNode, ...] = ()


@dataclass(frozen=True)
class PCollect(PNode):
    """Root sink: ships result deltas to the requestor."""

    children: Tuple[PNode, ...] = ()


class PhysicalPlan:
    """A validated plan: a :class:`PCollect` root over an operator tree."""

    def __init__(self, root: PNode):
        if not isinstance(root, PCollect):
            root = PCollect(children=(root,))
        self.root = root
        self._validate()

    def _validate(self) -> None:
        fixpoints = [n for n in self.root.walk() if isinstance(n, PFixpoint)]
        feedbacks = [n for n in self.root.walk() if isinstance(n, PFeedback)]
        if len(fixpoints) > 1:
            self._reject("at most one fixpoint per plan is supported",
                         "REX001")
        if fixpoints:
            fp = fixpoints[0]
            if len(fp.children) != 2:
                self._reject("fixpoint requires (base, recursive) children")
            recursive_feedbacks = [n for n in fp.children[1].walk()
                                   if isinstance(n, PFeedback)]
            if len(recursive_feedbacks) != 1:
                self._reject(
                    "the recursive branch must contain exactly one feedback leaf"
                )
            if len(feedbacks) != len(recursive_feedbacks):
                self._reject("feedback outside the recursive branch")
        elif feedbacks:
            self._reject("feedback leaf requires a fixpoint")

    def _reject(self, message: str, code: str = "REX002") -> None:
        # Imported lazily: repro.analysis imports this module at top level.
        from repro.analysis.diagnostics import make
        from repro.common.errors import PlanValidationError
        raise PlanValidationError(
            "physical plan failed validation",
            diagnostics=[make(code, message)])

    @property
    def fixpoint(self) -> Optional[PFixpoint]:
        for node in self.root.walk():
            if isinstance(node, PFixpoint):
                return node
        return None

    @property
    def is_recursive(self) -> bool:
        return self.fixpoint is not None

    def tables(self) -> List[str]:
        return sorted({n.table for n in self.root.walk() if isinstance(n, PScan)})
