"""Unit tests for RQL semantic analysis (AST -> logical plan shapes)."""

import pytest

from repro.algorithms import PRAgg
from repro.algorithms.kmeans import KMAgg
from repro.cluster import Cluster
from repro.common.errors import TypeCheckError
from repro.common.schema import SQLType
from repro.optimizer.logical import (
    LFeedback,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LProject,
    LRehash,
    LScan,
)
from repro.rql import RQLSession, compile_query, parse
from repro.udf import UDFRegistry


def make_env():
    cluster = Cluster(2)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         [(0, 1)], "srcId")
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         [(0, 1.0, 2.0)], None)
    registry = UDFRegistry()
    registry.register(PRAgg())
    registry.register(KMAgg)
    return cluster.catalog, registry


def compile_text(text):
    catalog, registry = make_env()
    return compile_query(parse(text), catalog, registry)


class TestSelectShapes:
    def test_projection_only(self):
        node = compile_text("SELECT srcId FROM graph")
        assert isinstance(node, LProject)
        assert isinstance(node.children[0], LScan)
        assert node.schema.names() == ["srcId"]

    def test_filter_between(self):
        node = compile_text("SELECT srcId FROM graph WHERE destId > 0")
        assert isinstance(node.children[0], LFilter)

    def test_groupby_shape(self):
        node = compile_text(
            "SELECT srcId, count(*) FROM graph GROUP BY srcId")
        assert isinstance(node, LProject)
        gb = node.children[0]
        assert isinstance(gb, LGroupBy)
        assert gb.keys == ["srcId"]
        assert gb.aggs[0].name == "count"

    def test_aggregate_inside_arithmetic_lifted(self):
        node = compile_text(
            "SELECT srcId, 2 * count(*) + 1 FROM graph GROUP BY srcId")
        gb = node.children[0]
        assert isinstance(gb, LGroupBy)
        assert len(gb.aggs) == 1
        # The projection references the synthetic aggregate column.
        out_type = node.schema[1].type
        assert out_type in (SQLType.INTEGER, SQLType.ANY)

    def test_output_types_inferred(self):
        node = compile_text("SELECT srcId, destId * 2.0 FROM graph")
        assert node.schema[0].type is SQLType.INTEGER
        assert node.schema[1].type is SQLType.DOUBLE

    def test_global_aggregate_has_empty_keys(self):
        node = compile_text("SELECT count(*) FROM graph")
        gb = node.children[0]
        assert isinstance(gb, LGroupBy)
        assert gb.keys == []


class TestHandlerJoinShapes:
    PR_INNER = ("SELECT PRAgg(srcId, pr).{nbr, prDiff} "
                "FROM graph, PR WHERE graph.srcId = PR.srcId "
                "GROUP BY srcId")

    def with_query(self, inner):
        return (f"WITH PR (srcId, pr) AS (SELECT srcId, 1.0 FROM graph) "
                f"UNION UNTIL FIXPOINT BY srcId "
                f"(SELECT nbr, sum(prDiff) FROM ({inner}) GROUP BY nbr)")

    def test_handler_join_detected(self):
        node = compile_text(self.with_query(self.PR_INNER))
        assert isinstance(node, LFixpoint)
        joins = [n for n in node.walk() if isinstance(n, LJoin)]
        assert len(joins) == 1
        assert joins[0].handler_factory is not None
        # The immutable graph is the left input; the feedback the right.
        assert isinstance(joins[0].left, LScan)
        assert isinstance(joins[0].right, LFeedback)

    def test_handler_schema_from_expansion(self):
        node = compile_text(self.with_query(self.PR_INNER))
        join = next(n for n in node.walk() if isinstance(n, LJoin))
        assert join.schema.names() == ["nbr", "prDiff"]

    def test_broadcast_handler_join_without_where(self):
        text = ("WITH KM (cid, x, y) AS (SELECT pid, x, y FROM points) "
                "UNION ALL UNTIL FIXPOINT BY cid "
                "(SELECT cid, KMAgg(cid, x, y).{cid, xDiff, yDiff} "
                "FROM points, KM GROUP BY cid)")
        node = compile_text(text)
        join = next(n for n in node.walk() if isinstance(n, LJoin))
        assert join.condition is None

    def test_three_relations_with_handler_rejected(self):
        text = self.with_query(
            "SELECT PRAgg(srcId, pr).{nbr, prDiff} FROM graph, graph g2, PR "
            "WHERE graph.srcId = PR.srcId GROUP BY srcId")
        with pytest.raises(TypeCheckError):
            compile_text(text)


class TestWithRecursive:
    def test_cte_columns_override_base_names(self):
        node = compile_text(
            "WITH R (vertex, score) AS (SELECT srcId, 1.0 FROM graph) "
            "UNION UNTIL FIXPOINT BY vertex "
            "(SELECT vertex, score FROM R)")
        assert isinstance(node, LFixpoint)
        assert node.schema.names() == ["vertex", "score"]
        feedback = next(n for n in node.walk() if isinstance(n, LFeedback))
        assert feedback.schema.has("vertex")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(TypeCheckError):
            compile_text(
                "WITH R (a, b, c) AS (SELECT srcId, 1.0 FROM graph) "
                "UNION UNTIL FIXPOINT BY a (SELECT a, b, c FROM R)")

    def test_unknown_fixpoint_key_rejected(self):
        with pytest.raises(TypeCheckError):
            compile_text(
                "WITH R (a, b) AS (SELECT srcId, 1.0 FROM graph) "
                "UNION UNTIL FIXPOINT BY nope (SELECT a, b FROM R)")

    def test_recursive_arity_mismatch_rejected(self):
        with pytest.raises(TypeCheckError):
            compile_text(
                "WITH R (a, b) AS (SELECT srcId, 1.0 FROM graph) "
                "UNION UNTIL FIXPOINT BY a (SELECT a FROM R)")


class TestJoinExtraction:
    def test_equality_becomes_join_condition(self):
        node = compile_text(
            "SELECT graph.srcId FROM graph, graph g2 "
            "WHERE graph.srcId = g2.destId")
        join = next(n for n in node.walk() if isinstance(n, LJoin))
        assert join.condition == ("graph.srcId", "g2.destId")

    def test_residual_conjunct_stays_as_filter(self):
        node = compile_text(
            "SELECT graph.srcId FROM graph, graph g2 "
            "WHERE graph.srcId = g2.destId AND graph.destId > 3")
        kinds = [type(n).__name__ for n in node.walk()]
        assert "LFilter" in kinds and "LJoin" in kinds

    def test_missing_join_condition_rejected(self):
        with pytest.raises(TypeCheckError):
            compile_text("SELECT graph.srcId FROM graph, graph g2")
