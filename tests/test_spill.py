"""Operator-state spill accounting (Section 4's memory/disk behaviour)."""

import pytest

from repro.algorithms import pagerank_reference, run_pagerank
from repro.cluster import Cluster, CostModel
from repro.datasets import dbpedia_like

EDGES = dbpedia_like(300, avg_out_degree=6, seed=111)


def run_with_budget(budget_bytes):
    cm = CostModel(worker_memory_bytes=budget_bytes)
    cluster = Cluster(2, cost_model=cm)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         EDGES, "srcId")
    return run_pagerank(cluster, tol=0.01)


class TestSpillAccounting:
    def test_spilled_fraction(self):
        cluster = Cluster(1, cost_model=CostModel(worker_memory_bytes=100))
        w = cluster.worker(0)
        assert w.spilled_fraction() == 0.0
        w.add_state_bytes(400)
        assert w.spilled_fraction() == pytest.approx(0.75)

    def test_state_access_free_in_memory(self):
        cluster = Cluster(1)
        w = cluster.worker(0)
        w.charge_state_access()
        assert w.stratum_usage.disk == 0.0

    def test_state_access_charges_when_spilled(self):
        cluster = Cluster(1, cost_model=CostModel(worker_memory_bytes=10))
        w = cluster.worker(0)
        w.add_state_bytes(1000)
        before = w.stratum_usage.disk
        w.charge_state_access()
        assert w.stratum_usage.disk > before

    def test_tiny_memory_budget_slows_query_not_results(self):
        """Spilling costs time, never correctness."""
        roomy_scores, roomy_m = run_with_budget(512 * 1024 * 1024)
        tight_scores, tight_m = run_with_budget(4 * 1024)
        assert tight_scores == roomy_scores
        assert tight_m.total_seconds() > roomy_m.total_seconds()

    def test_disk_time_appears_in_usage(self):
        cm = CostModel(worker_memory_bytes=2 * 1024)
        cluster = Cluster(2, cost_model=cm)
        cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                             EDGES, "srcId")
        run_pagerank(cluster, tol=0.01)
        assert any(w.total_usage.disk > 0.01
                   for w in cluster.alive_workers())
