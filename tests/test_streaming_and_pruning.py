"""Streamed partial aggregation (Section 4.2) and optimizer pruning."""

import pytest

from repro.cluster import Cluster
from repro.datasets import lineitem
from repro.datasets.tpch import LINEITEM_SCHEMA
from repro.optimizer import (
    CostEstimator,
    EstimationPruned,
    Optimizer,
    StatisticsCatalog,
)
from repro.optimizer.logical import LScan
from repro.runtime import (
    PGroupBy,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf import AggregateSpec, Count, Sum

ROWS = lineitem(800)


def agg_plan(mode):
    """Grouped aggregation with the partial (pre-shuffle) group-by in
    either stratum or stream emission mode.  Streamed partial aggregation
    "can help to avoid maintaining large internal state, and is
    particularly useful when executing native Hadoop code" (Section 4.2) —
    it belongs on combiner-style operators, not inside feedback loops,
    where per-intermediate emissions would compound each stratum."""
    key = lambda r: (r[1],)
    partial = PGroupBy(
        key_fn=key,
        specs_factory=lambda: [
            AggregateSpec(Sum(), arg=lambda r: r[5], output="s"),
            AggregateSpec(Count(), arg=lambda r: r[0], output="c"),
        ],
        mode=mode,
        children=(PScan("lineitem"),),
    )
    final = PGroupBy(
        key_fn=lambda r: (r[0],),
        specs_factory=lambda: [
            AggregateSpec(Sum(), arg=lambda r: r[1], output="s"),
            AggregateSpec(Sum(), arg=lambda r: r[2], output="c"),
        ],
        children=(PRehash.by(partial, lambda r: (r[0],)),),
    )
    return PhysicalPlan(final)


def expected_rows():
    out = {}
    for r in ROWS:
        s, c = out.get(r[1], (0.0, 0))
        out[r[1]] = (s + r[5], c + 1)
    return sorted((k, pytest.approx(v[0]), v[1]) for k, v in out.items())


class TestStreamedPartialAggregation:
    def run_mode(self, mode):
        cluster = Cluster(3)
        cluster.create_table("lineitem", LINEITEM_SCHEMA, ROWS, None)
        return QueryExecutor(cluster).execute(agg_plan(mode))

    def test_stream_and_stratum_agree(self):
        """Emission timing must not change the aggregation result (up to
        float summation order)."""
        stream = sorted(self.run_mode("stream").rows)
        stratum = sorted(self.run_mode("stratum").rows)
        expected = expected_rows()
        for got in (stream, stratum):
            assert len(got) == len(expected)
            for (k, s, c), (ek, es, ec) in zip(got, expected):
                assert (k, c) == (ek, ec)
                assert s == es  # es is an approx wrapper

    def test_stream_mode_emits_more_deltas(self):
        """Streaming trades buffering for chattiness: the partial operator
        emits a replacement per input tuple instead of one per stratum."""
        stream = self.run_mode("stream")
        stratum = self.run_mode("stratum")
        assert stream.metrics.total_tuples() > stratum.metrics.total_tuples()
        assert stream.metrics.total_bytes() > stratum.metrics.total_bytes()


class TestBranchAndBound:
    def test_budget_prunes_estimation(self):
        cluster = Cluster(4)
        cluster.create_table("big", ["id:Integer", "v:Double"],
                             [(i, float(i)) for i in range(5000)], "id")
        estimator = CostEstimator(StatisticsCatalog(cluster.catalog),
                                  cluster.cost, 4)
        table = cluster.catalog.get("big")
        node = LScan("big", table.schema, "id")
        full = estimator.plan_cost(node)
        with pytest.raises(EstimationPruned):
            estimator.plan_cost(node, budget=full / 100.0)
        # A generous budget does not prune.
        assert estimator.plan_cost(node, budget=full * 100.0) == full

    def test_budget_resets_after_pruning(self):
        cluster = Cluster(2)
        cluster.create_table("t", ["id:Integer"],
                             [(i,) for i in range(1000)], "id")
        estimator = CostEstimator(StatisticsCatalog(cluster.catalog),
                                  cluster.cost, 2)
        table = cluster.catalog.get("t")
        node = LScan("t", table.schema, "id")
        with pytest.raises(EstimationPruned):
            estimator.plan_cost(node, budget=1e-12)
        # The estimator is reusable afterwards (budget cleared).
        assert estimator.plan_cost(node) > 0

    def test_optimizer_reports_pruning(self):
        cluster = Cluster(4)
        cluster.create_table("r", ["a:Integer", "x:Integer"],
                             [(i, i) for i in range(500)], "a")
        cluster.create_table("s", ["a:Integer", "y:Integer"],
                             [(i % 50, i) for i in range(500)], None)
        from repro.rql import RQLSession

        raw = RQLSession(cluster, optimize=False).logical_plan(
            "SELECT r.a, x, y FROM r, s WHERE r.a = s.a AND x > 100")
        _, report = Optimizer(cluster).optimize_with_report(raw)
        assert report.candidates_considered > 1
        assert report.candidates_pruned >= 1
        assert report.chosen is not None
