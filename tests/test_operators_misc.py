"""Tests for Union, Collect batching, ResultSink multiset semantics."""

import pytest

from repro.cluster import Cluster
from repro.common import delete, insert, replace
from repro.common.punctuation import Punctuation
from repro.net import Message
from repro.operators import (
    Collect,
    ExecContext,
    GroupBy,
    ResultSink,
    Union,
)
from repro.operators.misc import REQUESTOR_NODE
from repro.udf import AggregateSpec, Sum

from helpers import Capture, wire


class TestUnion:
    def test_passthrough_both_ports(self):
        sink = Capture()
        union = Union()
        left = Capture()  # placeholders to allocate ports
        union.add_input(left)
        right = Capture()
        union.add_input(right)
        sink.add_input(union)
        wire(union, sink)  # re-opens; ports already allocated
        union.receive(insert((1,)), 0)
        union.receive(insert((2,)), 1)
        assert sorted(sink.rows()) == [(1,), (2,)]

    def test_punctuation_waits_for_all_ports(self):
        sink = Capture()
        union = Union()
        union.add_input(Capture())
        union.add_input(Capture())
        wire(union, sink)
        union.on_punctuation(Punctuation.end_of_stratum(0), 0)
        assert sink.puncts == []
        union.on_punctuation(Punctuation.end_of_stratum(0), 1)
        assert len(sink.puncts) == 1


class TestCollect:
    def make(self, batch_size=3):
        cluster = Cluster(1)
        ctx = ExecContext(cluster.worker(0), cluster=cluster,
                          snapshot=cluster.ring.snapshot())
        sink = ResultSink(cluster.network, exchange="c", expected_workers=1)
        collect = Collect(exchange="c", batch_size=batch_size)
        collect.open(ctx)
        return cluster, collect, sink

    def test_batches_at_threshold(self):
        cluster, collect, sink = self.make(batch_size=2)
        collect.receive(insert((1,)))
        assert cluster.network.pending() == 0  # buffered
        collect.receive(insert((2,)))
        assert cluster.network.pending() == 1  # flushed as one batch

    def test_punctuation_flushes_remainder(self):
        cluster, collect, sink = self.make(batch_size=100)
        collect.receive(insert((1,)))
        collect.on_punctuation(Punctuation.end_of_query(0))
        cluster.network.drain()
        assert sink.rows() == [(1,)]
        assert sink.done


class TestResultSink:
    def deliver(self, sink, deltas):
        sink.handle_message(Message(src=0, dst=REQUESTOR_NODE, exchange="c",
                                    deltas=deltas))

    def make(self, expected=1):
        cluster = Cluster(1)
        return ResultSink(cluster.network, exchange="c",
                          expected_workers=expected)

    def test_multiset_counting(self):
        sink = self.make()
        self.deliver(sink, [insert((1,)), insert((1,)), insert((2,))])
        assert sorted(sink.rows()) == [(1,), (1,), (2,)]

    def test_delete_removes_one_copy(self):
        sink = self.make()
        self.deliver(sink, [insert((1,)), insert((1,)), delete((1,))])
        assert sink.rows() == [(1,)]

    def test_replace_swaps(self):
        sink = self.make()
        self.deliver(sink, [insert((1,)), replace((1,), (9,))])
        assert sink.rows() == [(9,)]

    def test_done_requires_all_workers(self):
        sink = self.make(expected=2)
        punct = Message(src=0, dst=REQUESTOR_NODE, exchange="c",
                        punct=Punctuation.end_of_query(0))
        sink.handle_message(punct)
        assert not sink.done
        sink.handle_message(Message(src=1, dst=REQUESTOR_NODE, exchange="c",
                                    punct=Punctuation.end_of_query(0)))
        assert sink.done

    def test_stratum_puncts_ignored(self):
        sink = self.make()
        sink.handle_message(Message(src=0, dst=REQUESTOR_NODE, exchange="c",
                                    punct=Punctuation.end_of_stratum(3)))
        assert not sink.done


class TestGroupByMultiKey:
    def test_composite_grouping(self):
        sink = Capture()
        gb = GroupBy(key_fn=lambda r: (r[0], r[1]),
                     specs=[AggregateSpec(Sum(), arg=lambda r: r[2])])
        wire(gb, sink)
        gb.receive(insert(("a", 1, 10)))
        gb.receive(insert(("a", 2, 20)))
        gb.receive(insert(("a", 1, 5)))
        gb.on_punctuation(Punctuation.end_of_stratum(0))
        assert sorted(sink.rows()) == [("a", 1, 15), ("a", 2, 20)]
