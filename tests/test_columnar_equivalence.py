"""Property tests: columnar execution is observationally identical to row.

The columnar backend's contract is that ``ExecOptions(columnar=True)``
changes only host wall-clock time: for every plan, the canonical result
rows and the full ``QueryMetrics.fingerprint`` are bit-identical with the
block pipeline on and off, across the fuse x absint x sanitize matrix.
These tests drive the benchmark workloads through that matrix, then pin
the block/row boundary directly: ``ColumnBlock`` round trips are
lossless, the default ``push_block`` adapter materializes exactly the
row-path batch, pruned columns never materialize, the sanitizer forces
the row oracle, and kernels that hit an unsupported shape mid-stratum
fall back without changing a single charge.
"""

import pytest

from repro.algorithms.kmeans import kmeans_plan
from repro.algorithms.pagerank import pagerank_plan
from repro.algorithms.sssp import make_start_table, sssp_plan
from repro.cluster import Cluster
from repro.common.deltas import Delta, DeltaOp
from repro.datasets import dbpedia_like, geo_points, sample_centroids
from repro.operators.blocks import COLUMNAR_KERNELS, ColumnBlock
from repro.operators.fused import FusedKernel
from repro.operators.stateless import ApplyFunction, Filter, Project, TableScan
from repro.runtime import (
    ExecOptions,
    PFilter,
    PGroupBy,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.runtime.plan import PApply
from repro.udf import AggregateSpec, Sum

INS = DeltaOp.INSERT
DEL = DeltaOp.DELETE
UPD = DeltaOp.UPDATE
REP = DeltaOp.REPLACE


def _pagerank():
    cluster = Cluster(4)
    edges = dbpedia_like(150, avg_out_degree=4.0, seed=11)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    return cluster, pagerank_plan(mode="delta", tol=0.01), dict(
        max_strata=60, feedback_mode="delta")


def _sssp():
    cluster = Cluster(4)
    edges = dbpedia_like(150, avg_out_degree=4.0, seed=11)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    make_start_table(cluster, edges[0][0])
    return cluster, sssp_plan(), dict(max_strata=200)


def _kmeans():
    cluster = Cluster(4)
    points = geo_points(200, n_clusters=4, seed=11)
    centroids = sample_centroids(points, 4, seed=12)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, "pid")
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    return cluster, kmeans_plan(), dict(max_strata=120)


WORKLOADS = [("pagerank", _pagerank), ("sssp", _sssp), ("kmeans", _kmeans)]


def _observe(builder, columnar, fuse=True, absint=True, sanitize="off",
             rewrite=True):
    cluster, plan, extra = builder()
    options = ExecOptions(batch=True, columnar=columnar, fuse=fuse,
                          absint=absint, sanitize=sanitize, rewrite=rewrite,
                          **extra)
    executor = QueryExecutor(cluster, options)
    result = executor.execute(plan)
    violations = (result.sanitizer.report.codes()
                  if result.sanitizer is not None else None)
    return sorted(result.rows), result.metrics.fingerprint(), violations, \
        executor


@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_benchmark_workload_columnar_matrix(name, builder):
    """Rows and fingerprints identical columnar on/off across the
    fuse x absint x sanitize matrix — the row path is the oracle."""
    for fuse in (True, False):
        for absint in (True, False):
            for sanitize in ("off", "full"):
                rows_r, fp_r, v_r, _ = _observe(
                    builder, columnar=False, fuse=fuse, absint=absint,
                    sanitize=sanitize)
                rows_c, fp_c, v_c, _ = _observe(
                    builder, columnar=True, fuse=fuse, absint=absint,
                    sanitize=sanitize)
                ctx = (f"{name}: fuse={fuse} absint={absint} "
                       f"sanitize={sanitize}")
                assert rows_c == rows_r, f"{ctx}: rows diverge"
                assert fp_c == fp_r, f"{ctx}: fingerprint diverges"
                if sanitize != "off":
                    assert v_r == [] and v_c == [], (
                        f"{ctx}: sanitizer violations {v_r} / {v_c}")


def test_columnar_blocks_actually_flow():
    """The matrix must not pass vacuously: a columnar pagerank run emits
    scan blocks and exercises at least one columnar kernel."""
    _, _, _, executor = _observe(_pagerank, columnar=True)
    scans = [op for wp in executor.worker_plans.values()
             for op in wp.operators if isinstance(op, TableScan)]
    assert sum(s.blocks_emitted for s in scans) > 0
    kernel_batches = sum(
        getattr(op, "block_batches", 0)
        for wp in executor.worker_plans.values() for op in wp.operators)
    assert kernel_batches > 0


def test_sanitizer_forces_row_oracle():
    """The sanitizer's delta-invariant wrappers hook ``push_batch``, so a
    sanitized run must never arm the block fabric: zero blocks emitted,
    and the verdict stays clean."""
    _, _, violations, executor = _observe(_pagerank, columnar=True,
                                          sanitize="full")
    assert violations == []
    scans = [op for wp in executor.worker_plans.values()
             for op in wp.operators if isinstance(op, TableScan)]
    assert scans and all(s.blocks_emitted == 0 for s in scans)


# -- ColumnBlock round trips ---------------------------------------------

def _roundtrip(deltas):
    back = ColumnBlock.from_deltas(deltas).to_deltas()
    assert [(d.op, d.row, d.old, d.payload) for d in back] == \
        [(d.op, d.row, d.old, d.payload) for d in deltas]


def test_block_roundtrip_uniform_insert():
    _roundtrip([Delta(INS, (i, i * 2)) for i in range(10)])


def test_block_roundtrip_uniform_update_payloads():
    _roundtrip([Delta(UPD, (i,), payload=float(i)) for i in range(10)])


def test_block_roundtrip_uniform_replace_olds():
    _roundtrip([Delta(REP, (i, 1), old=(i, 0)) for i in range(10)])


def test_block_roundtrip_mixed_polarity():
    _roundtrip([
        Delta(INS, (1, 10)),
        Delta(DEL, (2, 20)),
        Delta(REP, (3, 31), old=(3, 30)),
        Delta(UPD, (4, 40), payload=4.0),
        Delta(INS, (5, 50)),
    ])


def test_empty_block_is_falsy_and_adapter_skips_it():
    block = ColumnBlock.from_deltas([])
    assert len(block) == 0 and not block
    assert block.to_deltas() == []

    calls = []

    class Recorder(Filter):
        def push_batch(self, deltas, port=0):
            calls.append(list(deltas))

    op = Recorder(lambda r: True)
    # Default (inherited) boundary adapter on an operator class: route a
    # block through Operator.push_block explicitly.
    from repro.operators.base import Operator
    Operator.push_block(op, block)
    assert calls == []
    Operator.push_block(op, ColumnBlock.from_deltas([Delta(INS, (1,))]))
    assert calls == [[Delta(INS, (1,))]]


def test_block_requires_exactly_one_polarity_form():
    with pytest.raises(ValueError):
        ColumnBlock([(1,)])
    with pytest.raises(ValueError):
        ColumnBlock([(1,)], kind=INS, kinds=[INS])


def test_pruned_column_never_materializes():
    block = ColumnBlock.from_rows([(i, i * 2, i * 3) for i in range(5)],
                                  live=frozenset({0, 2}))
    assert block.column(0) == [0, 1, 2, 3, 4]
    assert block.column(2) == [0, 3, 6, 9, 12]
    with pytest.raises(KeyError):
        block.column(1)
    assert block.materialized_columns() == [0, 2]
    # Pruning gates column views only — the row path is always whole.
    assert all(len(d.row) == 3 for d in block.to_deltas())


def test_compress_keeps_annotations_aligned():
    block = ColumnBlock([(1,), (2,), (3,), (4,)],
                        kinds=[INS, UPD, INS, UPD],
                        payloads=[None, 2.0, None, 4.0])
    kept = block.compress([1, 0, 0, 1])
    assert kept.rows == [(1,), (4,)]
    assert kept.kinds == [INS, UPD]
    assert kept.payloads == [None, 4.0]


# -- kernel vs row-path transforms (mid-stratum shapes) ------------------

class _FakeCtx:
    """Just enough context for a transform unit test: the real cost model
    plus charge tallies (equal inputs must produce equal tallies)."""

    def __init__(self):
        from repro.cluster.costs import CostModel
        self.cost = CostModel()
        self.charged = 0.0

    def charge_tuple_batch(self, n, cost):
        self.charged += n * cost

    def charge_cpu(self, cost, n=1):
        self.charged += n * cost


def _bare(op):
    op.ctx = _FakeCtx()
    if op.per_tuple_cost is None:
        op.per_tuple_cost = op.ctx.cost.cpu_tuple_cost
    return op


def _same_as_row_path(op, deltas):
    """transform_block(from_deltas(batch)) must equal transform_batch."""
    expected = op.transform_batch(list(deltas))
    got = op.transform_block(ColumnBlock.from_deltas(list(deltas)))
    got_deltas = got.to_deltas() if got is not None else []
    assert [(d.op, d.row, d.old, d.payload) for d in got_deltas] == \
        [(d.op, d.row, d.old, d.payload) for d in expected]


def test_filter_kernel_matches_row_path_on_mixed_blocks():
    op = _bare(Filter(lambda r: r[0] % 2 == 0))
    _same_as_row_path(op, [Delta(INS, (i, i)) for i in range(8)])
    # REPLACE straddles: old kept/new dropped, both kept, both dropped.
    _same_as_row_path(op, [
        Delta(REP, (2, 1), old=(3, 0)),   # new passes, old fails
        Delta(REP, (5, 1), old=(4, 0)),   # new fails, old passes
        Delta(REP, (6, 1), old=(8, 0)),   # both pass
        Delta(REP, (7, 1), old=(9, 0)),   # both fail
        Delta(DEL, (2, 2)),
        Delta(INS, (3, 3)),
    ])


def test_project_kernel_matches_row_path_on_replace_blocks():
    op = _bare(Project(lambda r: (r[0] * 10,)))
    _same_as_row_path(op, [Delta(INS, (i,)) for i in range(5)])
    _same_as_row_path(op, [Delta(REP, (i, 1), old=(i, 0)) for i in range(5)])
    _same_as_row_path(op, [Delta(UPD, (i,), payload=float(i))
                           for i in range(5)])


def test_apply_kernel_general_shape_falls_back_exactly():
    op = _bare(ApplyFunction(lambda v: v + 1, lambda r: (r[0],),
                             mode="extend"))
    _same_as_row_path(op, [Delta(INS, (i,)) for i in range(5)])
    # REPLACE traffic is a general shape: the kernel must route through
    # the row transform, not guess.
    _same_as_row_path(op, [Delta(REP, (i,), old=(i + 10,))
                           for i in range(3)])


# -- boundary adapters in a real plan ------------------------------------

def _chain_cluster():
    cluster = Cluster(3)
    rows = [(i, i % 7, float(i)) for i in range(200)]
    cluster.create_table("t", ["id:Integer", "g:Integer", "v:Double"],
                         rows, "id")
    return cluster


def test_fused_chain_runs_columnar_into_row_only_consumer():
    """Scan → Fused[Filter→Project→Apply] → Collect: the collect sink has
    no columnar kernel, so the fused kernel's output block crosses the
    block→row boundary adapter — rows and fingerprint must not move."""
    def builder():
        chain = PApply(udf_factory=lambda: (lambda v: v * 2.0),
                       arg_fn=lambda r: (r[2],), mode="extend",
                       children=(PProject.over(
                           PFilter.over(PScan("t"), lambda r: r[1] != 3),
                           lambda r: (r[0], r[1], r[2] + 1.0)),))
        return _chain_cluster(), PhysicalPlan(chain), {}

    rows_c, fp_c, _, executor = _observe(builder, columnar=True)
    rows_r, fp_r, _, _ = _observe(builder, columnar=False)
    assert rows_c == rows_r
    assert fp_c == fp_r
    fused = [op for wp in executor.worker_plans.values()
             for op in wp.operators if isinstance(op, FusedKernel)]
    assert fused and sum(k.block_batches for k in fused) > 0


def test_groupby_block_kernel_over_local_scan():
    """Single-node Scan → GroupBy: uniform INSERT blocks land directly in
    the grouped-aggregation kernel; totals must match the row path."""
    def builder():
        cluster = Cluster(1)
        rows = [(i, i % 5, float(i)) for i in range(100)]
        cluster.create_table("t", ["id:Integer", "g:Integer", "v:Double"],
                             rows, "id")
        plan = PhysicalPlan(PGroupBy(
            key_fn=lambda r: (r[1],),
            specs_factory=lambda: [AggregateSpec(Sum(),
                                                 arg=lambda r: r[2])],
            children=(PScan("t"),)))
        return cluster, plan, {}

    rows_c, fp_c, _, executor = _observe(builder, columnar=True)
    rows_r, fp_r, _, _ = _observe(builder, columnar=False)
    assert rows_c == rows_r
    assert fp_c == fp_r
    gb_blocks = sum(getattr(op, "block_batches", 0)
                    for wp in executor.worker_plans.values()
                    for op in wp.operators
                    if type(op).__name__ == "GroupBy")
    assert gb_blocks > 0


def test_sender_block_kernel_keyed_path():
    """Scan → Rehash → GroupBy: scans feed the exchange's local half as
    blocks; the sender's keyed kernel routes without materializing
    per-delta wrappers until the buffer append."""
    def builder():
        cluster = _chain_cluster()
        plan = PhysicalPlan(PGroupBy(
            key_fn=lambda r: (r[1],),
            specs_factory=lambda: [AggregateSpec(Sum(),
                                                 arg=lambda r: r[2])],
            children=(PRehash.by(PScan("t"), lambda r: (r[1],)),)))
        return cluster, plan, {}

    rows_c, fp_c, _, executor = _observe(builder, columnar=True)
    rows_r, fp_r, _, _ = _observe(builder, columnar=False)
    assert rows_c == rows_r
    assert fp_c == fp_r
    sender_blocks = sum(getattr(op, "block_batches", 0)
                        for wp in executor.worker_plans.values()
                        for op in wp.operators
                        if type(op).__name__ == "RehashSender")
    assert sender_blocks > 0


def test_columnar_kernel_registry_is_populated():
    """Every mandated kernel is registered (REX108's lint universe)."""
    names = {qualname for qualname, _ in COLUMNAR_KERNELS}
    for expected in ("Filter.transform_block", "Project.transform_block",
                     "ApplyFunction.transform_block",
                     "RehashSender.push_block", "GroupBy.push_block"):
        assert any(n.endswith(expected) for n in names), (
            f"{expected} missing from COLUMNAR_KERNELS: {sorted(names)}")
