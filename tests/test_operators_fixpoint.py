"""Unit tests for the fixpoint/while operator."""

import pytest

from repro.common import DeltaOp, delete, insert, replace, update
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.operators import Fixpoint
from repro.udf.aggregates import WhileDeltaHandler

from helpers import Capture, wire


def make_fixpoint(**kwargs):
    kwargs.setdefault("key_fn", lambda r: (r[0],))
    sink = Capture()
    fp = Fixpoint(**kwargs)
    wire(fp, sink)
    return fp, sink


class TestKeyedSemantics:
    def test_new_key_admitted_as_insert(self):
        fp, _ = make_fixpoint()
        fp.receive(insert(("a", 1.0)))
        assert [d.op for d in fp.pending] == [DeltaOp.INSERT]

    def test_duplicate_row_dropped(self):
        """Set-semantics duplicate elimination by key (Section 4.2)."""
        fp, _ = make_fixpoint()
        fp.receive(insert(("a", 1.0)))
        fp.take_pending()
        fp.receive(insert(("a", 1.0)))
        assert fp.pending == []

    def test_changed_row_refines_state(self):
        """State refinement: a differing row replaces the stored one."""
        fp, _ = make_fixpoint()
        fp.receive(insert(("a", 1.0)))
        fp.take_pending()
        fp.receive(insert(("a", 2.0)))
        d = fp.pending[0]
        assert d.op is DeltaOp.REPLACE
        assert d.old == ("a", 1.0) and d.row == ("a", 2.0)
        assert fp.state[("a",)] == ("a", 2.0)

    def test_upstream_replace_uses_new_image(self):
        fp, _ = make_fixpoint()
        fp.receive(insert(("a", 1.0)))
        fp.take_pending()
        fp.receive(replace(("a", 0.5), ("a", 3.0)))
        assert fp.pending[0].old == ("a", 1.0)  # our stored image, not theirs

    def test_delete_removes_key(self):
        fp, _ = make_fixpoint()
        fp.receive(insert(("a", 1.0)))
        fp.take_pending()
        fp.receive(delete(("a", 1.0)))
        assert fp.pending[0].op is DeltaOp.DELETE
        assert fp.mutable_size() == 0

    def test_delete_of_absent_key_is_noop(self):
        fp, _ = make_fixpoint()
        fp.receive(delete(("a", 1.0)))
        assert fp.pending == []

    def test_update_without_handler_rejected(self):
        fp, _ = make_fixpoint()
        with pytest.raises(ExecutionError):
            fp.receive(update(("a",), payload=1))

    def test_admit_unchanged_mode(self):
        """No-delta configuration: unchanged rows re-admitted each round."""
        fp, _ = make_fixpoint(admit_unchanged=True)
        fp.receive(insert(("a", 1.0)))
        fp.take_pending()
        fp.receive(insert(("a", 1.0)))
        assert len(fp.pending) == 1


class TestSetSemantics:
    def test_set_dedup(self):
        fp, _ = make_fixpoint(key_fn=None, semantics="set")
        fp.receive(insert((1, 2)))
        fp.receive(insert((1, 2)))
        assert len(fp.pending) == 1
        assert fp.mutable_size() == 1

    def test_set_replace_decomposes(self):
        fp, _ = make_fixpoint(key_fn=None, semantics="set")
        fp.receive(insert((1,)))
        fp.take_pending()
        fp.receive(replace((1,), (2,)))
        assert sorted(d.op.name for d in fp.pending) == ["DELETE", "INSERT"]


class TestBagSemantics:
    def test_everything_admitted(self):
        fp, _ = make_fixpoint(key_fn=None, semantics="bag")
        fp.receive(insert((1,)))
        fp.receive(insert((1,)))
        assert len(fp.pending) == 2


class TestPendingAndFeedback:
    def test_take_pending_clears(self):
        fp, _ = make_fixpoint()
        fp.receive(insert(("a", 1.0)))
        out = fp.take_pending()
        assert len(out) == 1 and fp.pending == []
        assert fp.admitted_this_stratum == 0

    def test_take_full_returns_entire_state(self):
        fp, _ = make_fixpoint()
        fp.receive(insert(("a", 1.0)))
        fp.receive(insert(("b", 2.0)))
        fp.take_pending()
        fp.receive(insert(("a", 5.0)))
        full = fp.take_pending(mode="full")
        assert sorted(d.row for d in full) == [("a", 5.0), ("b", 2.0)]
        assert all(d.op is DeltaOp.INSERT for d in full)

    def test_unknown_mode_raises(self):
        fp, _ = make_fixpoint()
        with pytest.raises(ExecutionError):
            fp.take_pending(mode="bogus")


class TestPunctuationProtocol:
    def test_stratum_punct_not_forwarded(self):
        fp, sink = make_fixpoint()
        fp.on_punctuation(Punctuation.end_of_stratum(0))
        assert sink.puncts == []

    def test_final_punct_flushes_state_and_forwards(self):
        fp, sink = make_fixpoint()
        fp.receive(insert(("a", 1.0)))
        fp.receive(insert(("b", 2.0)))
        fp.on_punctuation(Punctuation.end_of_query(3))
        assert sorted(sink.rows()) == [("a", 1.0), ("b", 2.0)]
        assert sink.puncts[0].is_final


class TestWhileHandler:
    def test_handler_controls_admission(self):
        class MonotoneMin(WhileDeltaHandler):
            """Admit only strictly-decreasing values per key."""

            def update(self, rel, delta):
                key = (delta.row[0],)
                cur = rel.get(key)
                if cur is None or delta.row[1] < cur[1]:
                    rel[key] = delta.row
                    return [insert(delta.row)]
                return []

        fp, _ = make_fixpoint(while_handler=MonotoneMin())
        fp.receive(insert(("a", 5.0)))
        fp.receive(insert(("a", 7.0)))   # worse: rejected
        fp.receive(insert(("a", 3.0)))   # better: admitted
        assert [d.row for d in fp.pending] == [("a", 5.0), ("a", 3.0)]
        assert fp.state[("a",)] == ("a", 3.0)
