"""Diagnostic objects: the code catalog, report queries, rendering."""

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Severity,
    make,
)


class TestCatalog:
    def test_codes_are_stable_and_well_formed(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith("REX") and len(code) == 6
            assert isinstance(severity, Severity)
            assert title

    def test_plan_and_lint_ranges(self):
        assert {c for c in CODES if c.startswith("REX0")} == {
            "REX001", "REX002", "REX003", "REX004",
            "REX005", "REX006", "REX007", "REX008"}
        assert {c for c in CODES if c.startswith("REX1")} == {
            "REX100", "REX101", "REX102", "REX103", "REX104", "REX105",
            "REX106", "REX107", "REX108"}
        assert {c for c in CODES if c.startswith("REX2")} == {
            "REX200", "REX201", "REX202", "REX203", "REX204",
            "REX205", "REX206"}
        assert {c for c in CODES if c.startswith("REX4")} == {
            "REX400", "REX401", "REX402", "REX403", "REX404",
            "REX405", "REX406", "REX407"}

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("REX999", "nope")


class TestDiagnostic:
    def test_make_uses_catalog_default_severity(self):
        assert make("REX001", "x").severity is Severity.ERROR
        assert make("REX006", "x").severity is Severity.WARNING

    def test_make_severity_override(self):
        d = make("REX005", "x", severity=Severity.INFO)
        assert d.severity is Severity.INFO

    def test_format_contains_code_location_hint(self):
        d = make("REX005", "not partitioned", location="GroupBy",
                 hint="add a rehash")
        text = d.format()
        assert "REX005" in text and "GroupBy" in text \
            and "add a rehash" in text

    def test_title_comes_from_catalog(self):
        assert "rehash" in make("REX006", "x").title


class TestReport:
    def _report(self):
        r = DiagnosticReport()
        r.add(make("REX006", "warn one"))
        r.add(make("REX001", "err one"))
        r.add(make("REX007", "warn two"))
        return r

    def test_queries(self):
        r = self._report()
        assert len(r) == 3 and bool(r)
        assert r.has_errors()
        assert [d.code for d in r.errors] == ["REX001"]
        assert len(r.warnings) == 2
        assert r.codes() == ["REX001", "REX006", "REX007"]
        assert len(r.by_code("REX006")) == 1

    def test_sorted_puts_errors_first(self):
        ordered = self._report().sorted()
        assert [d.code for d in ordered][0] == "REX001"

    def test_identical_triples_deduplicated(self):
        r = self._report()
        r.add(make("REX006", "warn one"))          # exact duplicate
        r.extend([make("REX006", "warn one")])     # via extend too
        assert len(r) == 3
        r.add(make("REX006", "warn one", location="Scan"))  # new location
        assert len(r) == 4

    def test_dedup_keeps_first_severity_and_hint(self):
        from repro.analysis.diagnostics import Severity

        r = DiagnosticReport()
        r.add(make("REX005", "x", severity=Severity.INFO, hint="keep me"))
        r.add(make("REX005", "x"))  # catalog default would be WARNING
        (diag,) = list(r)
        assert diag.severity is Severity.INFO
        assert diag.hint == "keep me"

    def test_sorted_is_stable_within_severity(self):
        r = self._report()
        ordered = r.sorted()
        assert [d.code for d in ordered] == ["REX001", "REX006", "REX007"]

    def test_format_summarizes(self):
        text = self._report().format()
        assert "1 error(s)" in text and "2 warning(s)" in text

    def test_empty_report(self):
        r = DiagnosticReport()
        assert not r and not r.has_errors()
        assert r.format() == "no diagnostics"

    def test_json_round_trips(self):
        payload = json.loads(self._report().to_json())
        assert payload["summary"] == {
            "total": 3, "errors": 1, "warnings": 2}
        assert payload["diagnostics"][0]["code"] == "REX001"
        assert set(payload["diagnostics"][0]) == {
            "code", "severity", "message", "location", "hint"}
