"""Failure injection and recovery (Section 4.3, Figure 12 machinery).

The correctness bar: a query that loses a node mid-recursion must still
produce exactly the result of a failure-free run (on shortest-path — the
monotone algorithm class the paper's recovery experiment uses).
"""

import pytest

from repro.algorithms import make_start_table, run_sssp, sssp_reference
from repro.cluster import Cluster
from repro.common.errors import RecoveryError
from repro.datasets import dbpedia_like
from repro.runtime import ExecOptions, FailureSpec


def sssp_cluster(edges, n=5, replication=3):
    cluster = Cluster(n)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=replication)
    make_start_table(cluster, 0)
    return cluster


EDGES = dbpedia_like(250, avg_out_degree=4, seed=17)
EXPECTED = sssp_reference(EDGES, 0)


class TestIncrementalRecovery:
    @pytest.mark.parametrize("fail_at", [1, 2, 4])
    def test_result_correct_after_failure(self, fail_at):
        cluster = sssp_cluster(EDGES)
        opts = ExecOptions(failure=FailureSpec(after_stratum=fail_at),
                           recovery="incremental")
        got, metrics = run_sssp(cluster, options=opts)
        assert {v: d for v, (_, d) in got.items()} == EXPECTED
        assert metrics.recovery_seconds > 0

    def test_specific_node_failure(self):
        cluster = sssp_cluster(EDGES)
        opts = ExecOptions(failure=FailureSpec(after_stratum=2, node=3),
                           recovery="incremental")
        got, _ = run_sssp(cluster, options=opts)
        assert {v: d for v, (_, d) in got.items()} == EXPECTED
        assert not cluster.workers[3].alive

    def test_recovery_slower_than_no_failure(self):
        clean = sssp_cluster(EDGES)
        _, clean_m = run_sssp(clean)
        failed = sssp_cluster(EDGES)
        opts = ExecOptions(failure=FailureSpec(after_stratum=2),
                           recovery="incremental")
        _, failed_m = run_sssp(failed, options=opts)
        assert failed_m.total_seconds() > clean_m.total_seconds()

    def test_requires_checkpointing(self):
        cluster = sssp_cluster(EDGES)
        opts = ExecOptions(failure=FailureSpec(after_stratum=2),
                           recovery="incremental", checkpointing=False)
        with pytest.raises(RecoveryError):
            run_sssp(cluster, options=opts)


class TestRestartRecovery:
    @pytest.mark.parametrize("fail_at", [1, 3])
    def test_result_correct_after_restart(self, fail_at):
        cluster = sssp_cluster(EDGES)
        opts = ExecOptions(failure=FailureSpec(after_stratum=fail_at),
                           recovery="restart")
        got, metrics = run_sssp(cluster, options=opts)
        assert {v: d for v, (_, d) in got.items()} == EXPECTED
        assert metrics.recovery_seconds > 0

    def test_restart_discards_more_work_for_late_failures(self):
        """The restart penalty grows with the failure iteration; the
        incremental penalty stays roughly flat (Figure 12's shape)."""
        def total_with(strategy, fail_at):
            cluster = sssp_cluster(EDGES)
            opts = ExecOptions(failure=FailureSpec(after_stratum=fail_at),
                               recovery=strategy)
            _, m = run_sssp(cluster, options=opts)
            return m.total_seconds()

        assert total_with("restart", 4) > total_with("restart", 1)

    def test_restart_beats_incremental_never(self):
        for fail_at in (1, 3):
            restart = None
            incremental = None
            cluster = sssp_cluster(EDGES)
            opts = ExecOptions(failure=FailureSpec(after_stratum=fail_at),
                               recovery="restart")
            _, m = run_sssp(cluster, options=opts)
            restart = m.total_seconds()
            cluster = sssp_cluster(EDGES)
            opts = ExecOptions(failure=FailureSpec(after_stratum=fail_at),
                               recovery="incremental")
            _, m = run_sssp(cluster, options=opts)
            incremental = m.total_seconds()
            assert incremental < restart


class TestReplicationInteraction:
    def test_unreplicated_table_fails_loudly(self):
        cluster = sssp_cluster(EDGES, replication=1)
        opts = ExecOptions(failure=FailureSpec(after_stratum=2),
                           recovery="incremental")
        with pytest.raises(RecoveryError):
            run_sssp(cluster, options=opts)

    def test_checkpoint_traffic_counted(self):
        """Δ-set replication shows up as network bytes (Figure 11 includes
        it); disabling checkpointing reduces traffic."""
        with_ckpt = sssp_cluster(EDGES)
        _, m1 = run_sssp(with_ckpt)
        without = sssp_cluster(EDGES)
        _, m2 = run_sssp(without, options=ExecOptions(checkpointing=False))
        assert m1.total_bytes() > m2.total_bytes()
        # Results identical either way.


class TestRepeatedFailures:
    """Section 4.3: "the incremental strategy would allow forward progress
    even in the case of repeated failures"."""

    def test_two_failures_still_exact(self):
        cluster = sssp_cluster(EDGES, n=6)
        opts = ExecOptions(failure=[FailureSpec(after_stratum=2),
                                    FailureSpec(after_stratum=5)],
                           recovery="incremental")
        got, metrics = run_sssp(cluster, options=opts)
        assert {v: d for v, (_, d) in got.items()} == EXPECTED
        assert sum(1 for w in cluster.workers.values() if not w.alive) == 2

    def test_three_failures_still_exact_with_rf4(self):
        cluster = sssp_cluster(EDGES, n=8, replication=4)
        opts = ExecOptions(failure=[FailureSpec(after_stratum=1),
                                    FailureSpec(after_stratum=3),
                                    FailureSpec(after_stratum=6)],
                           recovery="incremental",
                           checkpoint_replication=4)
        got, _ = run_sssp(cluster, options=opts)
        assert {v: d for v, (_, d) in got.items()} == EXPECTED

    def test_losing_every_replica_fails_loudly(self):
        """Killing all three replicas of a key range is data loss; the
        engine must refuse to return silently wrong results."""
        cluster = sssp_cluster(EDGES, n=8)
        snap = cluster.ring.snapshot()
        # Pick a key owned by three distinct nodes and kill exactly those.
        victims = snap.original_replicas(0, 3)
        opts = ExecOptions(
            failure=[FailureSpec(after_stratum=2 + i, node=n)
                     for i, n in enumerate(victims)],
            recovery="incremental")
        with pytest.raises(RecoveryError):
            run_sssp(cluster, options=opts)

    def test_simultaneous_failures_same_stratum(self):
        cluster = sssp_cluster(EDGES, n=6)
        opts = ExecOptions(failure=[FailureSpec(after_stratum=2),
                                    FailureSpec(after_stratum=2)],
                           recovery="incremental")
        got, _ = run_sssp(cluster, options=opts)
        assert {v: d for v, (_, d) in got.items()} == EXPECTED

    def test_repeated_failures_cost_more_each_time(self):
        def total(n_failures):
            cluster = sssp_cluster(EDGES, n=8)
            specs = [FailureSpec(after_stratum=1 + 2 * i)
                     for i in range(n_failures)]
            opts = ExecOptions(failure=specs, recovery="incremental")
            _, m = run_sssp(cluster, options=opts)
            return m.total_seconds()

        assert total(0) < total(1) < total(2)
