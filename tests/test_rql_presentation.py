"""ORDER BY / LIMIT presentation clauses."""

import pytest

from repro.cluster import Cluster
from repro.common.errors import ParseError, TypeCheckError
from repro.rql import RQLSession, parse


def make_session():
    cluster = Cluster(3)
    cluster.create_table("t", ["id:Integer", "g:Integer", "v:Double"],
                         [(i, i % 3, float((i * 7) % 10)) for i in range(20)],
                         "id")
    return RQLSession(cluster)


class TestParsing:
    def test_order_by_defaults_ascending(self):
        q = parse("SELECT a FROM t ORDER BY a")
        assert q.order_by[0].descending is False

    def test_order_by_desc_and_multiple(self):
        q = parse("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert q.order_by[0].descending is True
        assert q.order_by[1].descending is False

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 5").limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT 2.5")


class TestExecution:
    def test_order_by_ascending(self):
        session = make_session()
        result = session.execute("SELECT id, v FROM t ORDER BY v")
        values = [r[1] for r in result.rows]
        assert values == sorted(values)

    def test_order_by_descending(self):
        session = make_session()
        result = session.execute("SELECT id, v FROM t ORDER BY v DESC")
        values = [r[1] for r in result.rows]
        assert values == sorted(values, reverse=True)

    def test_order_by_multiple_keys(self):
        session = make_session()
        result = session.execute(
            "SELECT g, id FROM t ORDER BY g, id DESC")
        assert result.rows == sorted(result.rows,
                                     key=lambda r: (r[0], -r[1]))

    def test_limit_truncates(self):
        session = make_session()
        result = session.execute("SELECT id FROM t ORDER BY id LIMIT 3")
        assert result.rows == [(0,), (1,), (2,)]

    def test_top_n_aggregate(self):
        session = make_session()
        result = session.execute(
            "SELECT g, count(*) FROM t GROUP BY g ORDER BY g DESC LIMIT 2")
        assert [r[0] for r in result.rows] == [2, 1]

    def test_order_by_in_subquery_rejected(self):
        session = make_session()
        with pytest.raises(TypeCheckError):
            session.execute(
                "SELECT id FROM (SELECT id FROM t ORDER BY id) s")

    def test_unknown_order_column_rejected(self):
        from repro.common.errors import SchemaError

        session = make_session()
        with pytest.raises(SchemaError):
            session.execute("SELECT id FROM t ORDER BY nope")
