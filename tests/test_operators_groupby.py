"""Unit + property tests for delta-aware group-by."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import DeltaOp, delete, insert, replace, update
from repro.common.punctuation import Punctuation
from repro.operators import GroupBy
from repro.udf import AggregateSpec, Avg, Count, Min, Sum

from helpers import Capture, wire

EOS = Punctuation.end_of_stratum


def make_groupby(specs=None, mode="stratum", **kwargs):
    specs = specs or [AggregateSpec(Sum(), arg=lambda r: r[1], output="s")]
    sink = Capture()
    gb = GroupBy(key_fn=lambda r: (r[0],), specs=specs, mode=mode, **kwargs)
    wire(gb, sink)
    return gb, sink


class TestStratumMode:
    def test_flushes_on_punctuation_only(self):
        gb, sink = make_groupby()
        gb.receive(insert(("a", 3)))
        assert sink.deltas == []
        gb.on_punctuation(EOS(0))
        assert sink.rows() == [("a", 3)]

    def test_first_emit_is_insert_then_replace(self):
        gb, sink = make_groupby()
        gb.receive(insert(("a", 3)))
        gb.on_punctuation(EOS(0))
        gb.receive(insert(("a", 4)))
        gb.on_punctuation(EOS(1))
        assert [d.op for d in sink.deltas] == [DeltaOp.INSERT, DeltaOp.REPLACE]
        assert sink.deltas[1].old == ("a", 3)
        assert sink.deltas[1].row == ("a", 7)

    def test_unchanged_group_not_reemitted(self):
        gb, sink = make_groupby()
        gb.receive(insert(("a", 3)))
        gb.on_punctuation(EOS(0))
        sink.clear()
        gb.receive(insert(("b", 1)))          # 'a' untouched this stratum
        gb.on_punctuation(EOS(1))
        assert sink.rows() == [("b", 1)]

    def test_group_emptied_emits_delete(self):
        gb, sink = make_groupby()
        gb.receive(insert(("a", 3)))
        gb.on_punctuation(EOS(0))
        gb.receive(delete(("a", 3)))
        gb.on_punctuation(EOS(1))
        assert sink.deltas[-1].op is DeltaOp.DELETE
        assert sink.deltas[-1].row == ("a", 3)
        assert gb.state_size() == 0

    def test_group_created_and_emptied_same_stratum_is_silent(self):
        gb, sink = make_groupby()
        gb.receive(insert(("a", 3)))
        gb.receive(delete(("a", 3)))
        gb.on_punctuation(EOS(0))
        assert sink.deltas == []

    def test_replace_within_group(self):
        gb, sink = make_groupby()
        gb.receive(insert(("a", 3)))
        gb.receive(replace(("a", 3), ("a", 10)))
        gb.on_punctuation(EOS(0))
        assert sink.rows() == [("a", 10)]

    def test_replace_across_groups_decomposes(self):
        gb, sink = make_groupby()
        gb.receive(insert(("a", 3)))
        gb.receive(insert(("b", 1)))
        gb.on_punctuation(EOS(0))
        sink.clear()
        gb.receive(replace(("a", 3), ("b", 3)))
        gb.on_punctuation(EOS(1))
        by_op = {d.op for d in sink.deltas}
        assert DeltaOp.DELETE in by_op      # group 'a' vanished
        assert ("b", 4) in [d.row for d in sink.deltas]

    def test_multiple_aggregates(self):
        specs = [
            AggregateSpec(Sum(), arg=lambda r: r[1], output="s"),
            AggregateSpec(Count(), arg=lambda r: r[1], output="c"),
            AggregateSpec(Min(), arg=lambda r: r[1], output="m"),
        ]
        gb, sink = make_groupby(specs)
        gb.receive(insert(("a", 3)))
        gb.receive(insert(("a", 5)))
        gb.on_punctuation(EOS(0))
        assert sink.rows() == [("a", 8, 2, 3)]


class TestUpdateDeltas:
    def test_update_payload_adjusts_sum(self):
        """The PageRank pattern: value-update deltas fold into running sums
        across strata without any inserts ever arriving."""
        gb, sink = make_groupby()
        gb.receive(update(("a",), payload=0.5))
        gb.on_punctuation(EOS(0))
        assert sink.rows() == [("a", 0.5)]
        sink.clear()
        gb.receive(update(("a",), payload=0.25))
        gb.on_punctuation(EOS(1))
        d = sink.deltas[0]
        assert d.op is DeltaOp.REPLACE
        assert d.row == ("a", 0.75)

    def test_update_keeps_group_alive(self):
        gb, sink = make_groupby()
        gb.receive(update(("a",), payload=1.0))
        gb.on_punctuation(EOS(0))
        assert gb.state_size() == 1


class TestStreamMode:
    def test_emits_per_delta(self):
        gb, sink = make_groupby(mode="stream")
        gb.receive(insert(("a", 1)))
        gb.receive(insert(("a", 2)))
        assert [d.op for d in sink.deltas] == [DeltaOp.INSERT, DeltaOp.REPLACE]
        assert sink.deltas[-1].row == ("a", 3)


class TestClearStatesEachStratum:
    def test_reaggregation_mode(self):
        """No-delta execution: state is rebuilt per stratum; emission still
        produces replacements against the previous stratum's output."""
        gb, sink = make_groupby(clear_states_each_stratum=True)
        gb.receive(insert(("a", 3)))
        gb.on_punctuation(EOS(0))
        sink.clear()
        gb.receive(insert(("a", 4)))          # full recomputation: only 4
        gb.on_punctuation(EOS(1))
        d = sink.deltas[0]
        assert d.op is DeltaOp.REPLACE
        assert d.old == ("a", 3) and d.row == ("a", 4)


# ---------------------------------------------------------------------------
# Property: applying emitted deltas == recomputed GROUP BY ... SUM
# ---------------------------------------------------------------------------

@st.composite
def grouped_script(draw):
    live = []
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        action = draw(st.integers(min_value=0, max_value=2))
        if action == 0 or not live:
            row = (draw(st.integers(0, 3)), draw(st.integers(-5, 5)))
            live.append(row)
            ops.append(insert(row))
        elif action == 1:
            row = live.pop(draw(st.integers(0, len(live) - 1)))
            ops.append(delete(row))
        else:
            idx = draw(st.integers(0, len(live) - 1))
            old = live[idx]
            new = (draw(st.integers(0, 3)), draw(st.integers(-5, 5)))
            live[idx] = new
            ops.append(replace(old, new))
    return ops, live


@given(grouped_script(), st.integers(min_value=1, max_value=5))
def test_groupby_deltas_equal_recomputation(script, n_strata):
    """Deltas spread over several strata still materialize to the same
    grouped output as direct recomputation."""
    from repro.common.deltas import apply_deltas

    ops, live = script
    gb, sink = make_groupby()
    size = max(1, -(-len(ops) // n_strata))
    chunks = [ops[i:i + size] for i in range(0, len(ops), size)] or [[]]
    for s, chunk in enumerate(chunks):
        for d in chunk:
            gb.receive(d)
        gb.on_punctuation(EOS(s))
    materialized = apply_deltas(set(), sink.deltas)
    expected = {}
    for k, v in live:
        expected[k] = expected.get(k, 0) + v
    counts = {}
    for k, _ in live:
        counts[k] = counts.get(k, 0) + 1
    assert materialized == {(k,) + (expected[k],) for k in counts}
