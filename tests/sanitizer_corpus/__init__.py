"""Seeded buggy-operator corpus for the runtime sanitizer (REX200-series).

Each case plants one specific bug class from the paper's runtime
invariants into an otherwise-working query and runs it end-to-end under
``sanitize='full'`` (or, for the schedule race, under the determinism
checker).  The acceptance criterion is that every case is caught by a
*distinct* REX2xx check:

* ``rex200`` — a delta-aware applyFunction emits DELETE annotations for
  rows that were never inserted (an illegal annotation, Definition 1).
* ``rex201`` — a Sum UDA keeps a hidden call counter on ``self`` and
  silently drops every 7th δ-update; the incremental state diverges from
  independent re-aggregation of the same delta stream.
* ``rex203`` — a rehash sender "forgets" to flush one destination's
  buffer when stratum punctuation passes, leaving delta residue across
  the barrier.
* ``rex204`` — checkpoint replicas are corrupted in place between
  replication and a node failure; recovery restores rows that no longer
  match their pre-failure fingerprints.
* ``rex205`` — a first-arrival-wins UDA makes the query result a
  function of message delivery order; the schedule perturbation checker
  flags the race and minimizes it to the feeding exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.cluster import Cluster
from repro.common.deltas import Delta, DeltaOp
from repro.datasets import dbpedia_like
from repro.net.network import Message
from repro.operators.exchange import RehashSender
from repro.runtime import (
    ExecOptions,
    PApply,
    PFeedback,
    PFixpoint,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.runtime.executor import FailureSpec
from repro.udf.aggregates import AggregateSpec, Aggregator
from repro.udf.builtins import Sum

GRAPH_SCHEMA = ["srcId:Integer", "destId:Integer"]


def _graph_cluster(n_vertices: int = 60, degree: float = 4.0,
                   nodes: int = 4, seed: int = 13) -> Cluster:
    cluster = Cluster(nodes)
    cluster.create_table("graph", GRAPH_SCHEMA,
                         dbpedia_like(n_vertices, avg_out_degree=degree,
                                      seed=seed),
                         "srcId", replication=2)
    return cluster


# ---------------------------------------------------------------------------
# Buggy operators
# ---------------------------------------------------------------------------

class FlakySum(Sum):
    """Drops every 7th δ-update it folds, counting calls on ``self``.

    The bug class: a UDA whose behaviour depends on hidden per-instance
    state rather than purely on ``(state, delta)``.  The sanitizer's
    independent replay of the same delta stream lands on different call
    counts, so the replayed aggregate diverges from the live one
    (REX201) — exactly the kind of handler no static check can see.
    """

    name = "flaky_sum"

    def __init__(self):
        super().__init__()
        self._calls = 0

    def agg_state(self, state, delta, value, old_value=None):
        if delta.op is DeltaOp.UPDATE:
            self._calls += 1
            if self._calls % 7 == 0:
                return state  # silently dropped
        return super().agg_state(state, delta, value, old_value)


class FirstValue(Aggregator):
    """First-arrival-wins: the canonical order-dependent UDA (REX205)."""

    name = "first_value"

    def init_state(self):
        return {"value": None, "seen": False}

    def agg_state(self, state, delta, value, old_value=None):
        if delta.op is DeltaOp.INSERT and not state["seen"]:
            state["value"] = value
            state["seen"] = True
        return state

    def agg_result(self, state):
        return state["value"]


def _bogus_delete_udf(delta: Delta) -> List[Delta]:
    """Delta-aware applyFunction forwarding each insert *plus* a DELETE
    annotation for a row that never existed (illegal, Definition 1)."""
    if delta.op is DeltaOp.INSERT:
        return [delta, Delta(DeltaOp.DELETE, (delta.row[0], -999))]
    return [delta]


def _broken_on_punctuation(self, punct, port: int = 0) -> None:
    """RehashSender.on_punctuation that skips one destination's flush."""
    for dst in sorted(self._buffers)[:-1]:
        self._flush(dst)
    for dst in self.ctx.snapshot.live_nodes():
        self.ctx.cluster.network.send(Message(
            src=self.ctx.node_id, dst=dst,
            exchange=self.exchange, punct=punct,
        ))


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

def _pagerank_plan_with_sum(sum_factory: Callable[[], Aggregator],
                            tol: float = 0.01) -> PhysicalPlan:
    """The Figure 1 PageRank plan with the Sum aggregator swappable."""
    from repro.algorithms.pagerank import (PRAgg, PRFixpointHandler,
                                           _project_damping)

    src_key = lambda r: (r[0],)
    recursive = PProject.over(
        PGroupBy(
            key_fn=src_key,
            specs_factory=lambda: [AggregateSpec(sum_factory(),
                                                 output="prsum")],
            children=(PRehash(key_fn=src_key, children=(
                PJoin(left_key=src_key, right_key=src_key,
                      handler_factory=lambda: PRAgg(tol), handler_side=1,
                      children=(PScan("graph"), PFeedback())),
            )),),
        ),
        _project_damping,
    )
    base = PProject.over(PScan("graph"), lambda r: (r[0], 1.0))
    return PhysicalPlan(PFixpoint(
        key_fn=src_key, semantics="keyed",
        while_handler_factory=lambda: PRFixpointHandler(tol),
        children=(base, recursive),
    ))


def _first_value_plan() -> PhysicalPlan:
    group_key = lambda r: (r[0],)
    return PhysicalPlan(PGroupBy(
        key_fn=group_key,
        specs_factory=lambda: [AggregateSpec(
            FirstValue(), arg=lambda r: r[1], output="first")],
        children=(PRehash.by(PScan("obs"), group_key),),
    ))


# ---------------------------------------------------------------------------
# Cases
# ---------------------------------------------------------------------------

@dataclass
class Case:
    name: str
    code: str                 # the distinct REX2xx code that must fire
    run: Callable[[], object]  # -> DiagnosticReport


def _run_rex200():
    """Bogus DELETE annotations flow into a group-by's state."""
    cluster = Cluster(4)
    rows = [(i % 8, float(i)) for i in range(64)]
    cluster.create_table("items", ["k:Integer", "v:Double"], rows, "k")
    key = lambda r: (r[0],)
    plan = PhysicalPlan(PGroupBy(
        key_fn=key,
        specs_factory=lambda: [AggregateSpec(
            Sum(), arg=lambda r: r[1], output="total")],
        children=(PRehash.by(
            PApply(udf_factory=lambda: _bogus_delete_udf,
                   arg_fn=lambda r: r, delta_aware=True,
                   children=(PScan("items"),)),
            key),),
    ))
    result = QueryExecutor(cluster, ExecOptions(sanitize="full")).execute(plan)
    return result.sanitizer.report


def _run_rex201():
    """PageRank with the hidden-self-state FlakySum.

    absint is off here on purpose: the polarity proofs downgrade shadow
    replay to assertion mode on proven groups (the REX3xx fast-path
    payoff), and this case pins the replay machinery itself — the
    maximal-checking configuration is sanitize='full' + absint=False.
    """
    cluster = _graph_cluster()
    plan = _pagerank_plan_with_sum(FlakySum)
    opts = ExecOptions(sanitize="full", max_strata=60, absint=False)
    result = QueryExecutor(cluster, opts).execute(plan)
    return result.sanitizer.report


def _run_rex203():
    """PageRank with a sender that leaves one buffer unflushed."""
    cluster = _graph_cluster()
    plan = _pagerank_plan_with_sum(Sum)
    orig = RehashSender.on_punctuation
    RehashSender.on_punctuation = _broken_on_punctuation
    try:
        opts = ExecOptions(sanitize="full", max_strata=60)
        result = QueryExecutor(cluster, opts).execute(plan)
    finally:
        RehashSender.on_punctuation = orig
    return result.sanitizer.report


def _run_rex204():
    """PageRank with checkpoint replicas corrupted before a failure."""
    cluster = _graph_cluster()
    plan = _pagerank_plan_with_sum(Sum)

    def corrupt(stratum: int, executor) -> bool:
        if stratum == 9:
            # Poison every replica entry in place.  Keys re-replicated by
            # later strata heal, so this must land near convergence (the
            # Δ-set at stratum 10 is ~2 of 60 keys) for the poison to
            # survive until the failure.
            for wp in executor.worker_plans.values():
                for key, row in list(wp.checkpoint_entries.items()):
                    wp.checkpoint_entries[key] = (row[0], row[1] + 1000.0)
        return False

    opts = ExecOptions(sanitize="full", max_strata=60,
                       termination=corrupt,
                       failure=FailureSpec(after_stratum=10))
    result = QueryExecutor(cluster, opts).execute(plan)
    return result.sanitizer.report


def _run_rex205():
    """First-arrival-wins UDA under the schedule perturbation checker."""
    from repro.analysis.determinism import check_determinism

    rows = [(i % 10, i) for i in range(200)]

    def run_query(perturb):
        cluster = Cluster(4)
        cluster.create_table("obs", ["g:Integer", "v:Integer"], rows, "v")
        opts = ExecOptions(perturb=perturb)
        return QueryExecutor(cluster, opts).execute(_first_value_plan())

    outcome = check_determinism(run_query, perturbations=3, seed=0)
    return outcome.report


CASES = [
    Case("illegal-delete-annotation", "REX200", _run_rex200),
    Case("hidden-state-uda", "REX201", _run_rex201),
    Case("unflushed-sender-buffer", "REX203", _run_rex203),
    Case("corrupted-checkpoint", "REX204", _run_rex204),
    Case("order-dependent-uda", "REX205", _run_rex205),
]
