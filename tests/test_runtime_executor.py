"""Integration tests: hand-built physical plans on the simulated cluster."""

import pytest

from repro.cluster import Cluster
from repro.common import insert
from repro.common.errors import PlanError
from repro.operators import make_key_fn
from repro.runtime import (
    ExecOptions,
    PCollect,
    PFeedback,
    PFilter,
    PFixpoint,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf import AggregateSpec, Count, Min, Sum
from repro.udf.aggregates import WhileDeltaHandler


def make_cluster(n=4, **table_kwargs):
    cluster = Cluster(n)
    return cluster


class TestNonRecursive:
    def test_scan_collect_returns_all_rows(self):
        cluster = make_cluster()
        rows = [(i, i * 10) for i in range(50)]
        cluster.create_table("t", ["id:Integer", "v:Integer"], rows, "id")
        plan = PhysicalPlan(PScan("t"))
        result = QueryExecutor(cluster).execute(plan)
        assert sorted(result.rows) == rows

    def test_filter_aggregate_matches_direct_computation(self):
        """The Figure 4 query shape: WHERE + global SUM/COUNT."""
        cluster = make_cluster()
        rows = [(i, i % 7, float(i % 13)) for i in range(200)]
        cluster.create_table("lineitem",
                             ["k:Integer", "linenumber:Integer", "tax:Double"],
                             rows, "k")
        plan = PhysicalPlan(PGroupBy(
            key_fn=lambda r: (0,),
            specs_factory=lambda: [
                AggregateSpec(Sum(), arg=lambda r: r[2], output="s"),
                AggregateSpec(Count(), arg=lambda r: r[0], output="c"),
            ],
            children=(PRehash(key_fn=lambda r: (0,), children=(
                PFilter(predicate=lambda r: r[1] > 1, children=(PScan("lineitem"),)),
            )),),
        ))
        result = QueryExecutor(cluster).execute(plan)
        expect = [r for r in rows if r[1] > 1]
        assert len(result.rows) == 1
        key, s, c = result.rows[0]
        assert s == pytest.approx(sum(r[2] for r in expect))
        assert c == len(expect)

    def test_grouped_aggregate_across_rehash(self):
        cluster = make_cluster(3)
        rows = [(i, i % 5, i) for i in range(100)]
        cluster.create_table("t", ["id:Integer", "g:Integer", "v:Integer"],
                             rows, "id")
        plan = PhysicalPlan(PGroupBy(
            key_fn=lambda r: (r[1],),
            specs_factory=lambda: [AggregateSpec(Sum(), arg=lambda r: r[2])],
            children=(PRehash(key_fn=lambda r: (r[1],),
                              children=(PScan("t"),)),),
        ))
        result = QueryExecutor(cluster).execute(plan)
        expected = {}
        for _, g, v in rows:
            expected[g] = expected.get(g, 0) + v
        assert sorted(result.rows) == sorted((g, s) for g, s in expected.items())

    def test_distributed_hash_join(self):
        cluster = make_cluster(3)
        cluster.create_table("r", ["a:Integer", "x:Integer"],
                             [(i, i * 2) for i in range(30)], "a")
        cluster.create_table("s", ["a:Integer", "y:Integer"],
                             [(i % 10, i) for i in range(40)], None)
        key = lambda r: (r[0],)
        plan = PhysicalPlan(PJoin(
            left_key=key, right_key=key, handler_factory=None,
            children=(
                PScan("r"),                       # already partitioned by a
                PRehash(key_fn=key, children=(PScan("s"),)),
            ),
        ))
        result = QueryExecutor(cluster).execute(plan)
        expected = [(i % 10, (i % 10) * 2, i % 10, i) for i in range(40)]
        assert sorted(result.rows) == sorted(expected)

    def test_metrics_populated(self):
        cluster = make_cluster()
        cluster.create_table("t", ["id:Integer"], [(i,) for i in range(20)], "id")
        result = QueryExecutor(cluster).execute(PhysicalPlan(PScan("t")))
        m = result.metrics
        assert m.num_iterations == 1
        assert m.total_seconds() > 0
        assert m.iterations[0].tuples_processed > 0
        assert m.result_rows == 20

    def test_single_node_cluster_works(self):
        cluster = make_cluster(1)
        cluster.create_table("t", ["id:Integer"], [(i,) for i in range(5)], "id")
        result = QueryExecutor(cluster).execute(PhysicalPlan(PScan("t")))
        assert sorted(result.rows) == [(i,) for i in range(5)]


def reachability_plan():
    """Transitive reachability from vertex 0 — a canonical fixpoint query.

    base: start(v) ; recursive: Δ(v) ⋈ edges(src=v) -> (dst) -> rehash -> fp
    """
    vkey = lambda r: (r[0],)
    return PhysicalPlan(PFixpoint(
        key_fn=vkey,
        semantics="set",
        children=(
            PRehash(key_fn=vkey, children=(PScan("start"),)),
            PRehash(key_fn=vkey, children=(
                PProject(row_fn=lambda r: (r[2],), children=(
                    PJoin(left_key=vkey, right_key=vkey, handler_factory=None,
                          handler_side=None,
                          children=(
                              PFeedback(),
                              PScan("edges"),
                          )),
                )),
            )),
        ),
    ))


class TestRecursive:
    def edges(self):
        # Two chains and a cycle; vertices 100+ unreachable.
        return [(0, 1), (1, 2), (2, 3), (3, 1), (0, 10), (10, 11),
                (100, 101), (101, 102)]

    def load(self, cluster):
        cluster.create_table("edges", ["src:Integer", "dst:Integer"],
                             self.edges(), "src")
        cluster.create_table("start", ["v:Integer"], [(0,)], "v")

    def test_reachability_converges_to_correct_set(self):
        cluster = make_cluster(4)
        self.load(cluster)
        result = QueryExecutor(cluster).execute(reachability_plan())
        assert sorted(r[0] for r in result.rows) == [0, 1, 2, 3, 10, 11]

    def test_same_result_on_any_cluster_size(self):
        """Determinism across degrees of parallelism (stratified model)."""
        outputs = []
        for n in (1, 2, 5):
            cluster = make_cluster(n)
            self.load(cluster)
            result = QueryExecutor(cluster).execute(reachability_plan())
            outputs.append(sorted(result.rows))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_iteration_metrics_track_deltas(self):
        cluster = make_cluster(2)
        self.load(cluster)
        result = QueryExecutor(cluster).execute(reachability_plan())
        m = result.metrics
        # Frontier: {0}, {1,10}, {2,11}, {3}, {} (cycle back to 1 is dup)
        assert m.delta_series()[0] == 1
        assert m.delta_series()[-1] == 0
        assert m.num_iterations >= 4

    def test_max_strata_bounds_execution(self):
        cluster = make_cluster(2)
        self.load(cluster)
        opts = ExecOptions(max_strata=2)
        result = QueryExecutor(cluster, opts).execute(reachability_plan())
        assert result.metrics.num_iterations == 2

    def test_explicit_termination_condition(self):
        cluster = make_cluster(2)
        self.load(cluster)
        opts = ExecOptions(termination=lambda stratum, ex: stratum >= 1)
        result = QueryExecutor(cluster, opts).execute(reachability_plan())
        assert result.metrics.num_iterations == 2


class _MonotoneMin(WhileDeltaHandler):
    """Admit (v, dist) only when dist improves — shortest-path refinement."""

    def update(self, rel, delta):
        key = (delta.row[0],)
        cur = rel.get(key)
        if cur is None or delta.row[1] < cur[1]:
            rel[key] = delta.row
            return [insert(delta.row)]
        return []


def sssp_plan():
    vkey = lambda r: (r[0],)
    return PhysicalPlan(PFixpoint(
        key_fn=vkey,
        while_handler_factory=_MonotoneMin,
        children=(
            PRehash(key_fn=vkey, children=(PScan("start"),)),
            PRehash(key_fn=vkey, children=(
                PProject(row_fn=lambda r: (r[3], r[1] + 1), children=(
                    PJoin(left_key=vkey, right_key=vkey, handler_factory=None,
                          handler_side=None,
                          children=(PFeedback(), PScan("edges"))),
                )),
            )),
        ),
    ))


class TestWhileHandlerRecursion:
    def test_sssp_distances(self):
        cluster = make_cluster(3)
        cluster.create_table("edges", ["src:Integer", "dst:Integer"],
                             [(0, 1), (1, 2), (0, 2), (2, 3)], "src")
        cluster.create_table("start", ["v:Integer", "d:Integer"], [(0, 0)], "v")
        result = QueryExecutor(cluster).execute(sssp_plan())
        dists = dict(result.rows)
        assert dists == {0: 0, 1: 1, 2: 1, 3: 2}


class TestPlanValidation:
    def test_two_fixpoints_rejected(self):
        inner = PFixpoint(key_fn=lambda r: (r[0],), children=(
            PScan("t"), PFeedback()))
        with pytest.raises(PlanError):
            PhysicalPlan(PFixpoint(key_fn=lambda r: (r[0],),
                                   children=(inner, PFeedback())))

    def test_feedback_without_fixpoint_rejected(self):
        with pytest.raises(PlanError):
            PhysicalPlan(PFeedback())

    def test_fixpoint_needs_two_children(self):
        with pytest.raises(PlanError):
            PhysicalPlan(PFixpoint(key_fn=lambda r: (r[0],),
                                   children=(PScan("t"),)))

    def test_recursive_branch_needs_feedback(self):
        with pytest.raises(PlanError):
            PhysicalPlan(PFixpoint(key_fn=lambda r: (r[0],),
                                   children=(PScan("t"), PScan("u"))))

    def test_tables_listed(self):
        plan = reachability_plan()
        assert plan.tables() == ["edges", "start"]
        assert plan.is_recursive
