"""Focused rule-pass behaviors the corpus doesn't pin: severity
downgrades, partitioning propagation through projections, broadcast
handling, and warning-vs-error boundaries."""

from repro.analysis import analyze_logical
from repro.analysis.diagnostics import Severity
from repro.common.schema import Field as F
from repro.common.schema import SQLType
from repro.operators.expressions import ColumnRef
from repro.optimizer.logical import LGroupBy, LProject, LRehash
from repro.udf.builtins import Sum

from tests.analysis_corpus import (
    _edges,
    good_fixpoint,
    missing_rehash,
    union_all_no_contraction,
)
from repro.optimizer.logical import LAggCall


def _sum_groupby(child, key="srcId", col="weight"):
    return LGroupBy(
        child, [key],
        [LAggCall("sum", Sum, [ColumnRef(col)],
                  [F("total", SQLType.DOUBLE)], composable=True)])


class TestExchangesPlacedFlag:
    def test_missing_rehash_is_error_when_placed(self):
        report = analyze_logical(missing_rehash(), exchanges_placed=True)
        assert any(d.code == "REX005"
                   and d.severity is Severity.ERROR for d in report)

    def test_missing_rehash_is_info_before_placement(self):
        report = analyze_logical(missing_rehash(), exchanges_placed=False)
        hits = [d for d in report if d.code == "REX005"]
        assert hits and all(d.severity is Severity.INFO for d in hits)
        assert not report.has_errors()


class TestPartitioningPropagation:
    def test_projection_preserves_partitioning_positionally(self):
        scan = _edges(partition_key="srcId")
        proj = LProject(scan, [
            (ColumnRef("weight"), F("w", SQLType.DOUBLE)),
            (ColumnRef("srcId"), F("node", SQLType.INTEGER)),
        ])
        report = analyze_logical(_sum_groupby(proj, key="node", col="w"))
        assert "REX005" not in report.codes()

    def test_projection_dropping_the_key_loses_partitioning(self):
        scan = _edges(partition_key="srcId")
        proj = LProject(scan, [
            (ColumnRef("weight"), F("w", SQLType.DOUBLE)),
            (ColumnRef("destId"), F("d", SQLType.INTEGER)),
        ])
        report = analyze_logical(_sum_groupby(proj, key="d", col="w"))
        assert "REX005" in report.codes()

    def test_broadcast_does_not_satisfy_keyed_requirement(self):
        bcast = LRehash(_edges(), None, broadcast=True)
        report = analyze_logical(_sum_groupby(bcast))
        assert "REX005" in report.codes()

    def test_gather_of_gather_is_redundant(self):
        inner = LRehash(_edges(), None)
        outer = LRehash(inner, None)
        report = analyze_logical(
            LGroupBy(outer, [], [LAggCall(
                "sum", Sum, [ColumnRef("weight")],
                [F("total", SQLType.DOUBLE)], composable=True)]))
        assert "REX006" in report.codes()


class TestSeverityBoundaries:
    def test_union_all_without_contraction_is_warning_not_error(self):
        report = analyze_logical(union_all_no_contraction())
        hits = [d for d in report if d.code == "REX002"]
        assert hits and all(d.severity is Severity.WARNING for d in hits)
        assert not report.has_errors()

    def test_good_fixpoint_is_error_free(self):
        report = analyze_logical(good_fixpoint())
        assert not report.has_errors()

    def test_diagnostic_locations_are_label_paths(self):
        report = analyze_logical(missing_rehash())
        locations = [d.location for d in report if d.code == "REX005"]
        assert locations and all("GroupBy" in loc for loc in locations)
