"""Property tests: telemetry and the flight recorder are charge-neutral.

The live-telemetry contract mirrors the fusion one: the sampler only reads
values the engine already computed and writes to its own ``telemetry.*``
instruments, and the flight recorder appends breadcrumbs outside every
hook point — so canonical result rows and the full
``QueryMetrics.fingerprint`` must be bit-identical across the whole
observation matrix:

* flight recorder off / on (the default),
* no obs context at all,
* obs attached with telemetry sampling off,
* obs attached with telemetry sampling on (the default).

These tests drive the benchmark workloads through that matrix and then
check the sampler actually observed the run it rode along with.
"""

import pytest

from repro.algorithms.kmeans import kmeans_plan
from repro.algorithms.pagerank import pagerank_plan
from repro.algorithms.sssp import make_start_table, sssp_plan
from repro.cluster import Cluster
from repro.datasets import dbpedia_like, geo_points, sample_centroids
from repro.obs import ObsContext, Tracer
from repro.runtime import ExecOptions, QueryExecutor


def _pagerank():
    cluster = Cluster(4)
    edges = dbpedia_like(150, avg_out_degree=4.0, seed=11)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    return cluster, pagerank_plan(mode="delta", tol=0.01), dict(
        max_strata=60)


def _sssp():
    cluster = Cluster(4)
    edges = dbpedia_like(150, avg_out_degree=4.0, seed=11)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    make_start_table(cluster, edges[0][0])
    return cluster, sssp_plan(), dict(max_strata=200)


def _kmeans():
    cluster = Cluster(4)
    points = geo_points(200, n_clusters=4, seed=11)
    centroids = sample_centroids(points, 4, seed=12)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, "pid")
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    return cluster, kmeans_plan(), dict(max_strata=120)


WORKLOADS = [("pagerank", _pagerank), ("sssp", _sssp), ("kmeans", _kmeans)]

#: (config name, flight on, obs factory) — the observation matrix.
CONFIGS = [
    ("plain", False, None),
    ("flight", True, None),
    ("obs-no-telemetry", True,
     lambda: ObsContext(tracer=Tracer(enabled=False), telemetry=False)),
    ("obs-telemetry", True,
     lambda: ObsContext(tracer=Tracer(enabled=False), telemetry=True)),
]


def _observe(builder, flight, obs):
    """One fresh run; returns the charge-neutrality observables."""
    cluster, plan, extra = builder()
    options = ExecOptions(flight=flight, obs=obs, **extra)
    result = QueryExecutor(cluster, options).execute(plan)
    return sorted(result.rows), result.metrics.fingerprint(), result


@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_observation_matrix_is_charge_neutral(name, builder):
    baseline = None
    for config, flight, obs_factory in CONFIGS:
        obs = obs_factory() if obs_factory else None
        try:
            rows, fp, result = _observe(builder, flight, obs)
        finally:
            if obs is not None:
                obs.close()
        if baseline is None:
            baseline = (rows, fp)
        else:
            assert rows == baseline[0], (
                f"{name}: rows diverge under config {config!r}")
            assert fp == baseline[1], (
                f"{name}: fingerprint diverges under config {config!r} — "
                "observation charged the simulation")


@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_sampler_observed_the_run(name, builder):
    obs = ObsContext(tracer=Tracer(enabled=False))
    try:
        _, _, result = _observe(builder, True, obs)
        metrics = result.metrics
        assert obs.telemetry.samples == metrics.num_iterations
        deltas = obs.registry.series("telemetry.stratum.delta_count")
        assert len(deltas.points) + deltas.dropped == metrics.num_iterations
        # The flight recorder rode along at the same cadence.
        strata_notes = [n for n in result.flight.notes
                        if n["kind"] == "stratum"]
        assert len(strata_notes) == metrics.num_iterations
        # Both views saw the same Δ-set sizes, stratum by stratum.
        assert [v for _, v in deltas.points] == \
            [n["deltas"] for n in strata_notes][-len(deltas.points):]
    finally:
        obs.close()


def test_telemetry_off_means_no_telemetry_metrics():
    obs = ObsContext(tracer=Tracer(enabled=False), telemetry=False)
    try:
        _observe(_kmeans, True, obs)
        assert obs.registry.names("telemetry.") == []
    finally:
        obs.close()
