"""Property tests: fused execution is observationally identical to unfused.

The fusion pass's contract is that ``ExecOptions(fuse=True)`` (kernels plus
the metric-preserving fabric fast paths) changes only host wall-clock time:
for every plan, the canonical result rows, the full
``QueryMetrics.fingerprint``, and the runtime sanitizer's verdict are
bit-identical with fusion on and off, in both batch and per-tuple mode.
These tests drive the benchmark workloads and hand-built fusable plans
through the whole fuse x batch matrix under ``sanitize=full``, then check
the pass's legality decisions directly: stateful operators, exchange
boundaries, and multi-input nodes must terminate a chain, and a
single-operator "chain" must be declined.
"""

import pytest

from repro.algorithms.kmeans import kmeans_plan
from repro.algorithms.pagerank import pagerank_plan
from repro.algorithms.sssp import make_start_table, sssp_plan
from repro.cluster import Cluster
from repro.datasets import dbpedia_like, geo_points, sample_centroids
from repro.optimizer.fusion import fuse_plan, fusion_report
from repro.runtime import (
    ExecOptions,
    PFilter,
    PFused,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.runtime.plan import PApply
from repro.udf import AggregateSpec, Sum


def _pagerank():
    cluster = Cluster(4)
    edges = dbpedia_like(150, avg_out_degree=4.0, seed=11)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    return cluster, pagerank_plan(mode="delta", tol=0.01), dict(
        max_strata=60, feedback_mode="delta")


def _sssp():
    cluster = Cluster(4)
    edges = dbpedia_like(150, avg_out_degree=4.0, seed=11)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    make_start_table(cluster, edges[0][0])
    return cluster, sssp_plan(), dict(max_strata=200)


def _kmeans():
    cluster = Cluster(4)
    points = geo_points(200, n_clusters=4, seed=11)
    centroids = sample_centroids(points, 4, seed=12)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, "pid")
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    return cluster, kmeans_plan(), dict(max_strata=120)


WORKLOADS = [("pagerank", _pagerank), ("sssp", _sssp), ("kmeans", _kmeans)]


def _observe(builder, fuse, batch, sanitize="full", obs=None):
    """One fresh run; returns every observable the contract covers."""
    cluster, plan, extra = builder()
    options = ExecOptions(batch=batch, fuse=fuse, sanitize=sanitize,
                          obs=obs, **extra)
    executor = QueryExecutor(cluster, options)
    result = executor.execute(plan)
    violations = (result.sanitizer.report.codes()
                  if result.sanitizer is not None else None)
    return (sorted(result.rows), result.metrics.fingerprint(), violations,
            executor)


@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_benchmark_workload_fuse_batch_matrix(name, builder):
    """Rows, fingerprints, and sanitizer verdicts identical across the
    full fuse x batch matrix, with zero REX diagnostics everywhere."""
    baseline = None
    for fuse in (True, False):
        for batch in (True, False):
            rows, fp, violations, _ = _observe(builder, fuse, batch)
            assert violations == [], (
                f"{name}: sanitizer violations with fuse={fuse}, "
                f"batch={batch}: {violations}")
            if baseline is None:
                baseline = (rows, fp)
            else:
                assert rows == baseline[0], (
                    f"{name}: rows diverge with fuse={fuse}, batch={batch}")
                assert fp == baseline[1], (
                    f"{name}: fingerprint diverges with fuse={fuse}, "
                    f"batch={batch}")


# -- hand-built fusable chains ------------------------------------------

def _chain_cluster():
    cluster = Cluster(3)
    rows = [(i, i % 7, float(i)) for i in range(200)]
    cluster.create_table("t", ["id:Integer", "g:Integer", "v:Double"],
                         rows, "id")
    return cluster, rows


def _chain_plan():
    """Scan -> Filter -> Project -> Apply: a maximal 3-op fusable chain."""
    chain = PApply(udf_factory=lambda: (lambda v: v * 2.0),
                   arg_fn=lambda r: (r[2],), mode="extend",
                   children=(PProject.over(
                       PFilter.over(PScan("t"), lambda r: r[1] != 3),
                       lambda r: (r[0], r[1], r[2] + 1.0)),))
    return PhysicalPlan(chain)


def test_custom_chain_fuses_and_matches_unfused():
    def builder():
        cluster, _ = _chain_cluster()
        return cluster, _chain_plan(), {}

    results = {}
    for fuse in (True, False):
        rows, fp, _, executor = _observe(builder, fuse, batch=True,
                                         sanitize="off")
        results[fuse] = (rows, fp)
        fused_decisions = [d for d in executor.fusion_decisions if d.fused]
        if fuse:
            assert len(fused_decisions) == 1
            assert fused_decisions[0].ops == ("Filter", "Project", "Apply")
            assert fused_decisions[0].label() == "Fused[Filter→Project→Apply]"
        else:
            assert executor.fusion_decisions == []
    assert results[True] == results[False]
    _, rows200 = _chain_cluster()
    expect = sorted((r[0], r[1], r[2] + 1.0, (r[2] + 1.0) * 2.0)
                    for r in rows200 if r[1] != 3)
    assert results[True][0] == expect


def test_custom_chain_under_obs_reports_fusion_groups():
    """Obs mode delegates to the wired chain but the kernel still counts
    batches and surfaces the group through ObsContext.fusion_groups()."""
    from repro.obs import ObsContext, Tracer

    def builder():
        cluster, _ = _chain_cluster()
        return cluster, _chain_plan(), {}

    obs = ObsContext(tracer=Tracer(enabled=False))
    try:
        rows_obs, fp_obs, _, _ = _observe(builder, fuse=True, batch=True,
                                          sanitize="off", obs=obs)
        groups = obs.fusion_groups()
    finally:
        obs.close()
    assert groups, "fused kernel missing from fusion_groups()"
    assert all(g["label"] == "Fused[Filter→Project→Apply]" for g in groups)
    for g in groups:
        assert [c.split("(", 1)[0] for c in g["constituents"]] == \
            ["Filter", "Project", "Apply"]
    assert sum(g["fused_batches"] for g in groups) > 0
    rows_plain, fp_plain, _, _ = _observe(builder, fuse=True, batch=True,
                                          sanitize="off")
    assert rows_obs == rows_plain
    assert fp_obs == fp_plain


def test_chain_feeding_rehash_fuses_local_half():
    """A chain below an exchange fuses into the sender's local pipeline:
    the rehash's child becomes the PFused node."""
    def builder():
        cluster, _ = _chain_cluster()
        plan = PhysicalPlan(PGroupBy(
            key_fn=lambda r: (r[1],),
            specs_factory=lambda: [AggregateSpec(Sum(),
                                                 arg=lambda r: r[2])],
            children=(PRehash.by(
                PProject.over(
                    PFilter.over(PScan("t"), lambda r: r[1] != 3),
                    lambda r: (r[0], r[1], r[2] * 2.0)),
                lambda r: (r[1],)),),
        ))
        return cluster, plan, {}

    _, plan, _ = builder()
    fused_root, decisions = fuse_plan(plan.root)
    rehash = fused_root.children[0].children[0]  # Collect / GroupBy / Rehash
    assert isinstance(rehash, PRehash)
    assert isinstance(rehash.children[0], PFused)
    assert [d.fused for d in decisions] == [True]
    assert "exchange" not in decisions[0].reason  # chain is *below* it

    rows_fused, fp_fused, _, _ = _observe(builder, True, True, "off")
    rows_plain, fp_plain, _, _ = _observe(builder, False, True, "off")
    assert rows_fused == rows_plain
    assert fp_fused == fp_plain


# -- legality: where the pass must decline ------------------------------

def test_single_stateless_operator_declined():
    root = PProject.over(PScan("t"), lambda r: r)
    fused_root, decisions = fuse_plan(root)
    assert fused_root is root  # identity-preserving: nothing rewritten
    assert len(decisions) == 1
    assert not decisions[0].fused
    assert "single stateless operator" in decisions[0].reason
    assert decisions[0].to_dict()["label"] is None


def test_stateful_operator_breaks_chain():
    """Project / GroupBy / Project: two length-1 fragments, both declined
    — the pass must not fuse across the stateful operator."""
    root = PProject.over(
        PGroupBy(key_fn=lambda r: (r[0],),
                 specs_factory=lambda: [AggregateSpec(Sum(),
                                                      arg=lambda r: r[1])],
                 children=(PProject.over(PScan("t"), lambda r: r),)),
        lambda r: r)
    fused_root, decisions = fuse_plan(root)
    assert not any(d.fused for d in decisions)
    assert len(decisions) == 2
    assert not any(isinstance(n, PFused) for n in fused_root.walk())


def test_exchange_boundary_terminates_chain():
    root = PFilter.over(
        PProject.over(PRehash.by(PScan("t"), lambda r: (r[0],)),
                      lambda r: r),
        lambda r: True)
    _, decisions = fuse_plan(root)
    assert len(decisions) == 1
    assert decisions[0].fused
    assert "exchange boundary (Rehash)" in decisions[0].reason


def test_multi_input_operator_terminates_chain():
    join = PJoin(left_key=lambda r: (r[0],), right_key=lambda r: (r[0],),
                 children=(PScan("a"), PScan("b")))
    root = PProject.over(PFilter.over(join, lambda r: True), lambda r: r)
    _, decisions = fuse_plan(root)
    assert len(decisions) == 1
    assert decisions[0].fused
    assert decisions[0].ops == ("Filter", "Project")
    assert "stateful or source operator (Join)" in decisions[0].reason


def test_fusion_report_matches_fuse_plan():
    _, plan, _ = (lambda: (None, _chain_plan(), None))()
    report = fusion_report(plan.root)
    assert len(report) == 1
    assert report[0]["fused"] is True
    assert report[0]["ops"] == ["Filter", "Project", "Apply"]
    assert report[0]["label"] == "Fused[Filter→Project→Apply]"


def test_pfused_walk_covers_constituents():
    fused_root, _ = fuse_plan(_chain_plan().root)  # PCollect over the chain
    fused = fused_root.children[0]
    assert isinstance(fused, PFused)
    kinds = [type(n).__name__ for n in fused.walk()]
    assert kinds == ["PFused", "PFilter", "PProject", "PApply", "PScan"]
