"""EXPLAIN ANALYZE report content and attribution coverage."""

import pytest

from repro.bench.wallclock import _pagerank_setup
from repro.obs import ObsContext, attribution_coverage, explain_analyze
from repro.runtime.executor import ExecOptions


@pytest.fixture(scope="module")
def traced_run():
    obs = ObsContext()
    metrics = _pagerank_setup(80, 4.0, 3, 5)(ExecOptions(batch=True,
                                                         obs=obs))
    return obs, metrics


class TestCostTable:
    def test_lists_operators_with_cost_share(self, traced_run):
        obs, metrics = traced_run
        report = explain_analyze(obs, metrics)
        assert "EXPLAIN ANALYZE" in report
        assert "sim_s" in report and "sim_%" in report
        # the PageRank plan's heavy hitters show up by name
        assert "Fixpoint" in report
        assert "GroupBy" in report or "Rehash" in report

    def test_checkpoint_work_appears_as_system_row(self, traced_run):
        obs, metrics = traced_run
        report = explain_analyze(obs, metrics)
        assert "(checkpoint)" in report

    def test_attribution_coverage_meets_acceptance_bar(self, traced_run):
        obs, _ = traced_run
        coverage = attribution_coverage(obs)
        assert coverage >= 0.95
        # with system frames for checkpoint/recovery the coverage is total
        assert coverage == pytest.approx(1.0)
        report = explain_analyze(obs)
        assert "100.0%" in report
        assert "(unattributed)" not in report

    def test_share_column_sums_to_total(self, traced_run):
        obs, _ = traced_run
        attributed, unattributed = obs.attribution()
        total = attributed + unattributed
        assert total > 0
        assert sum(s.sim_seconds for s in obs.operator_stats()) \
            == pytest.approx(attributed)


class TestTimeline:
    def test_stratum_rows_track_query_metrics(self, traced_run):
        obs, metrics = traced_run
        report = explain_analyze(obs, metrics)
        assert "per-stratum timeline" in report
        for it in metrics.iterations:
            assert f"{it.seconds:.4f}" in report
        assert f"total: {metrics.total_seconds():.4f}s" in report
        assert f"{metrics.total_bytes()} bytes shuffled" in report

    def test_timeline_omitted_without_metrics(self, traced_run):
        obs, _ = traced_run
        report = explain_analyze(obs)
        assert "per-stratum timeline" not in report

    def test_memo_section_reports_hit_rates(self, traced_run):
        obs, metrics = traced_run
        report = explain_analyze(obs, metrics)
        assert "memo caches" in report
        assert "memo.rehash." in report
        assert "memo.groupby." in report
        assert "% hit rate" in report


class TestOptions:
    def test_per_node_splits_instances(self, traced_run):
        obs, _ = traced_run
        merged = explain_analyze(obs)
        split = explain_analyze(obs, per_node=True)
        assert "@n0" not in merged
        assert "@n0" in split and "@n1" in split

    def test_top_truncates_and_reports_remainder(self, traced_run):
        obs, _ = traced_run
        report = explain_analyze(obs, top=2)
        assert "more operators)" in report
        # rows are cost-sorted, so the top operator survives truncation
        full = explain_analyze(obs)
        top_operator = full.splitlines()[3].split()[0]
        assert top_operator in report
