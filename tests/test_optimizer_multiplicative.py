"""The Section 5.2 multiplicative-join pre-aggregation (multiply rule)."""

import pytest

from repro.cluster import Cluster
from repro.optimizer import add_exchanges, lower
from repro.optimizer.logical import LGroupBy, LJoin, LProject
from repro.optimizer.planner import push_preagg_through_multiplicative_join
from repro.rql import RQLSession
from repro.runtime import QueryExecutor

QUERY = ("SELECT a, sum(x) FROM r, s WHERE r.a = s.b GROUP BY a")


def make_cluster():
    cluster = Cluster(3)
    # Non key-FK join: both sides have several rows per key.
    cluster.create_table("r", ["a:Integer", "x:Integer"],
                         [(i % 4, i) for i in range(40)], "a")
    cluster.create_table("s", ["b:Integer", "y:Integer"],
                         [(i % 4, i * 10) for i in range(28)], "b")
    return cluster


def direct_answer():
    r = [(i % 4, i) for i in range(40)]
    s = [(i % 4, i * 10) for i in range(28)]
    out = {}
    for a, x in r:
        for b, _ in s:
            if a == b:
                out[a] = out.get(a, 0) + x
    return sorted(out.items())


class TestMultiplicativeJoinRewrite:
    def raw_plan(self, cluster):
        return RQLSession(cluster, optimize=False).logical_plan(QUERY)

    def test_rewrite_applies(self):
        plan = self.raw_plan(make_cluster())
        # The compiled shape is Project(GroupBy(Join)).
        groupby = plan.children[0]
        assert isinstance(groupby, LGroupBy)
        rewritten = push_preagg_through_multiplicative_join(groupby)
        assert rewritten is not None
        assert isinstance(rewritten, LProject)
        join = rewritten.children[0]
        assert isinstance(join, LJoin)
        assert all(isinstance(c, LGroupBy) for c in join.children)

    def test_rewritten_plan_gives_exact_answer(self):
        cluster = make_cluster()
        plan = self.raw_plan(cluster)
        groupby = plan.children[0]
        rewritten = push_preagg_through_multiplicative_join(groupby)
        # Re-attach the original outer projection's column selection by
        # executing the rewritten subplan directly (schema matches).
        physical = lower(add_exchanges(rewritten))
        result = QueryExecutor(cluster).execute(physical)
        assert sorted(result.rows) == direct_answer()

    def test_direct_plan_same_answer(self):
        cluster = make_cluster()
        session = RQLSession(cluster, optimize=False)
        result = session.execute(QUERY)
        assert sorted(result.rows) == direct_answer()

    def test_optimized_session_still_correct(self):
        cluster = make_cluster()
        session = RQLSession(cluster)  # optimizer may pick either shape
        result = session.execute(QUERY)
        assert sorted(result.rows) == direct_answer()

    def test_rewrite_declined_for_noncomposable(self):
        cluster = make_cluster()
        plan = RQLSession(cluster, optimize=False).logical_plan(
            "SELECT a, min(x) FROM r, s WHERE r.a = s.b GROUP BY a")
        groupby = plan.children[0]
        # min has no multiply function: under-counting cannot be repaired.
        assert push_preagg_through_multiplicative_join(groupby) is None

    def test_rewrite_declined_when_grouping_off_key(self):
        cluster = make_cluster()
        plan = RQLSession(cluster, optimize=False).logical_plan(
            "SELECT y, sum(x) FROM r, s WHERE r.a = s.b GROUP BY y")
        groupby = plan.children[0]
        assert push_preagg_through_multiplicative_join(groupby) is None
