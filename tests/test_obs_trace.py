"""Tracer, sinks, export formats, and the batch-invariant fingerprint."""

import io
import json

import pytest

from repro.bench.wallclock import _pagerank_setup
from repro.obs import (
    JsonlSink,
    ObsContext,
    RingBufferSink,
    TraceEvent,
    Tracer,
    chrome_trace,
    delta_flow_fingerprint,
    validate_jsonl,
)
from repro.runtime.executor import ExecOptions


class TestSinks:
    def test_ring_buffer_keeps_recent_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer([sink])
        for i in range(5):
            tracer.instant(f"e{i}", "test", 0)
        names = [e.name for e in sink.events()]
        assert names == ["e2", "e3", "e4"]
        assert sink.dropped == 2

    def test_unbounded_ring_buffer(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        for i in range(100):
            tracer.instant(f"e{i}", "test", 0)
        assert len(sink.events()) == 100
        assert sink.dropped == 0

    def test_jsonl_sink_writes_one_object_per_line(self):
        buf = io.StringIO()
        tracer = Tracer([JsonlSink(buf)])
        tracer.instant("send", "exchange", 1, stratum=2, bytes=64)
        tracer.complete("push", "operator", 0, ts=0.5, dur=0.1)
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "send"
        assert first["stratum"] == 2
        assert first["args"]["bytes"] == 64
        second = json.loads(lines[1])
        assert second["ph"] == "X"
        assert second["dur"] == 0.1

    def test_disabled_tracer_emits_nothing(self):
        sink = RingBufferSink()
        tracer = Tracer([sink], enabled=False)
        tracer.instant("e", "test", 0)
        tracer.complete("s", "test", 0, ts=0.0, dur=1.0)
        assert sink.events() == []


class TestValidateJsonl:
    def _line(self, **over):
        record = {"name": "e", "cat": "test", "ph": "i", "ts": 0.0,
                  "node": 0}
        record.update(over)
        return json.dumps(record)

    def test_counts_valid_lines(self):
        lines = [self._line(), "", self._line(ph="X", dur=0.5)]
        assert validate_jsonl(lines) == 2

    def test_rejects_bad_json(self):
        with pytest.raises(ValueError, match="invalid JSON"):
            validate_jsonl(["{nope"])

    def test_rejects_missing_key(self):
        record = json.loads(self._line())
        del record["node"]
        with pytest.raises(ValueError, match="missing key"):
            validate_jsonl([json.dumps(record)])

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_jsonl([self._line(ph="Z")])

    def test_rejects_span_without_duration(self):
        with pytest.raises(ValueError, match="without dur"):
            validate_jsonl([self._line(ph="X")])


class TestChromeTrace:
    def test_structure_loads_in_perfetto_format(self):
        events = [
            TraceEvent("push", "operator", "X", 0.001, 0, dur=0.0005,
                       stratum=1, args={"n": 3}),
            TraceEvent("send", "exchange", "i", 0.002, 1,
                       args={"bytes": 64}),
        ]
        doc = chrome_trace(events)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        records = doc["traceEvents"]
        # one process_name metadata row per node, then the events
        meta = [r for r in records if r["ph"] == "M"]
        assert {m["pid"] for m in meta} == {0, 1}
        span = next(r for r in records if r["ph"] == "X")
        assert span["ts"] == pytest.approx(1000.0)   # seconds -> us
        assert span["dur"] == pytest.approx(500.0)
        assert span["args"]["stratum"] == 1
        instant = next(r for r in records if r["ph"] == "i")
        assert instant["s"] == "t"
        # the whole document must be JSON-serializable
        json.dumps(doc)

    def test_requestor_node_named(self):
        doc = chrome_trace([TraceEvent("stratum.begin", "stratum", "i",
                                       0.0, -1)])
        meta = doc["traceEvents"][0]
        assert "requestor" in meta["args"]["name"]


class TestFingerprintDeterminism:
    """The delta-flow fingerprint is the tracer's determinism contract:
    batch and per-tuple execution emit different event streams but must
    digest identically."""

    def _run(self, batch):
        obs = ObsContext()
        metrics = _pagerank_setup(80, 4.0, 3, 5)(
            ExecOptions(batch=batch, obs=obs))
        return obs, metrics

    def test_batch_vs_per_tuple_fingerprints_match(self):
        obs_t, m_t = self._run(batch=False)
        obs_b, m_b = self._run(batch=True)
        fp_t = delta_flow_fingerprint(obs_t.tracer.events())
        fp_b = delta_flow_fingerprint(obs_b.tracer.events())
        assert fp_t == fp_b
        # and the simulated metrics are bit-identical too
        assert m_t.fingerprint() == m_b.fingerprint()

    def test_attempt_suffix_is_canonicalized(self):
        # Two runs in one process get different exchange attempt ids
        # (x0.a<N>); the fingerprint must not see them.
        obs_1, _ = self._run(batch=True)
        obs_2, _ = self._run(batch=True)
        assert (delta_flow_fingerprint(obs_1.tracer.events())
                == delta_flow_fingerprint(obs_2.tracer.events()))

    def test_instrumentation_does_not_change_simulated_metrics(self):
        m_plain = _pagerank_setup(80, 4.0, 3, 5)(ExecOptions(batch=True))
        _, m_obs = self._run(batch=True)
        assert m_plain.fingerprint() == m_obs.fingerprint()


class TestEventStream:
    def test_pagerank_trace_has_all_categories(self):
        obs = ObsContext()
        _pagerank_setup(80, 4.0, 3, 5)(ExecOptions(batch=True, obs=obs))
        events = obs.tracer.events()
        cats = {e.cat for e in events}
        assert {"operator", "exchange", "stratum"} <= cats
        ends = [e for e in events
                if e.cat == "stratum" and e.name == "stratum.end"]
        assert [e.stratum for e in ends] == list(range(len(ends)))
        assert all(e.ph == "X" for e in ends)

    def test_trace_pushes_false_suppresses_operator_events(self):
        obs = ObsContext(trace_pushes=False)
        _pagerank_setup(80, 4.0, 3, 5)(ExecOptions(batch=True, obs=obs))
        events = obs.tracer.events()
        assert not any(e.name in ("push", "push_batch") for e in events)
        # stratum lifecycle and sends survive
        assert any(e.cat == "stratum" for e in events)
        assert any(e.name == "send" for e in events)
        # ...and attribution still works in full
        assert sum(s.sim_seconds for s in obs.operator_stats()) > 0

    def test_jsonl_roundtrip_validates(self):
        obs = ObsContext()
        _pagerank_setup(80, 4.0, 3, 5)(ExecOptions(batch=True, obs=obs))
        lines = [json.dumps(e.to_dict()) for e in obs.tracer.events()]
        assert validate_jsonl(lines) == len(lines)
