"""Unit tests for partitioned tables and the catalog."""

import pytest

from repro.common import Schema
from repro.common.errors import ReproError, SchemaError
from repro.storage import Catalog, HashRing, PartitionedTable


def make_table(replication=1, key="id"):
    schema = Schema.of("id:Integer", "v:Double")
    return PartitionedTable("t", schema, key, replication=replication)


class TestPartitionedTable:
    def test_partition_key_must_exist(self):
        with pytest.raises(SchemaError):
            PartitionedTable("t", Schema.of("a:Integer"), "nope")

    def test_load_partitions_all_rows(self):
        ring = HashRing(range(4))
        table = make_table()
        rows = [(i, float(i)) for i in range(100)]
        table.load(rows, ring)
        assert table.total_rows() == 100
        assert sorted(table.all_rows()) == sorted(tuple(r) for r in rows)

    def test_rows_land_on_ring_primary(self):
        ring = HashRing(range(4))
        table = make_table()
        table.load([(i, 0.0) for i in range(50)], ring)
        for node in ring.nodes:
            for row in table.partition(node):
                assert ring.primary(row[0]) == node

    def test_double_load_rejected(self):
        ring = HashRing(range(2))
        table = make_table()
        table.load([(1, 1.0)], ring)
        with pytest.raises(ReproError):
            table.load([(2, 2.0)], ring)

    def test_replicas_mirror_rows(self):
        ring = HashRing(range(4))
        table = make_table(replication=3)
        table.load([(i, 0.0) for i in range(60)], ring)
        for node in ring.nodes:
            for row in table.partition(node):
                holders = [n for n in ring.nodes
                           if row in list(table.replica_partition(n))]
                assert len(holders) == 2  # primary + 2 replicas

    def test_round_robin_without_key(self):
        ring = HashRing(range(3))
        table = PartitionedTable("u", Schema.of("x:Integer"), None)
        table.load([(i,) for i in range(9)], ring)
        sizes = sorted(len(table.partition(n)) for n in ring.nodes)
        assert sizes == [3, 3, 3]

    def test_recovery_reroutes_to_live_replicas(self):
        ring = HashRing(range(4))
        table = make_table(replication=2)
        table.load([(i, 0.0) for i in range(80)], ring)
        snap = ring.snapshot()
        victim = max(ring.nodes, key=lambda n: len(table.partition(n)))
        lost_rows = set(table.partition(victim).rows)
        snap.mark_failed(victim)
        moved = table.rows_for_recovery(victim, snap)
        assert victim not in moved
        assert set(r for rows in moved.values() for r in rows) == lost_rows

    def test_recovery_without_replicas_raises(self):
        ring = HashRing(range(3))
        table = make_table(replication=1)
        table.load([(i, 0.0) for i in range(30)], ring)
        snap = ring.snapshot()
        victim = max(ring.nodes, key=lambda n: len(table.partition(n)))
        snap.mark_failed(victim)
        with pytest.raises(ReproError):
            table.rows_for_recovery(victim, snap)

    def test_total_bytes_positive(self):
        ring = HashRing(range(2))
        table = make_table()
        table.load([(1, 2.0), (2, 3.0)], ring)
        assert table.total_bytes() > 0


class TestCatalog:
    def test_register_get(self):
        cat = Catalog()
        t = make_table()
        cat.register(t)
        assert cat.get("t") is t
        assert cat.has("t")
        assert cat.names() == ["t"]

    def test_duplicate_register_rejected(self):
        cat = Catalog()
        cat.register(make_table())
        with pytest.raises(ReproError):
            cat.register(make_table())

    def test_unknown_get_raises(self):
        with pytest.raises(ReproError):
            Catalog().get("missing")

    def test_drop(self):
        cat = Catalog()
        cat.register(make_table())
        cat.drop("t")
        assert not cat.has("t")
        cat.drop("t")  # idempotent
