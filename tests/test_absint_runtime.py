"""Runtime property suite for the delta-polarity abstract interpretation
(REX3xx) and its proof-directed fast paths.

Three properties, asserted on every benchmark workload (smoke sizes):

1. **Fingerprint identity**: the simulated metrics fingerprint is
   bit-identical with ``ExecOptions(absint=...)`` on or off, at every
   sanitize level — the fast paths change wall clock only, never the
   simulated execution.
2. **Observation consistency**: under the full sanitizer every
   runtime-observed delta kind stays inside the static polarity verdict
   (no REX307, and a direct per-port subset check against the armed
   proofs).
3. **Violation detection**: a delta kind that contradicts a proof trips
   a hard REX307 error (unit-level, via a fabricated operator).
"""

import itertools

import pytest

from repro.algorithms.sssp import make_start_table
from repro.bench.common import fresh_cluster
from repro.bench.wallclock import (
    _graph_cluster,
    _metrics_fingerprint,
    _time_run,
    _workloads,
)
from repro.common.deltas import Delta, DeltaOp
from repro.datasets import geo_points, sample_centroids

SMOKE = dict(_workloads(smoke=True, nodes=4, seed=7))


# ---------------------------------------------------------------------------
# Property 1: absint on/off never changes the simulated execution
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SMOKE))
def test_fingerprint_identical_with_and_without_absint(name):
    fps = {}
    for sanitize, absint in itertools.product(("off", "full"),
                                              (True, False)):
        _, _, metrics = _time_run(SMOKE[name], batch=True,
                                  sanitize=sanitize, flight=False,
                                  absint=absint)
        fps[(sanitize, absint)] = _metrics_fingerprint(metrics)
    base = fps[("off", True)]
    for key, fp in fps.items():
        assert fp == base, (
            f"{name}: fingerprint diverged at sanitize={key[0]!r}, "
            f"absint={key[1]}")


@pytest.mark.parametrize("name", sorted(SMOKE))
def test_fingerprint_identical_unfused(name):
    """The stateless proof loops also serve fused chains; check the
    unfused shape too so both code paths stay charge-identical."""
    fps = [
        _metrics_fingerprint(_time_run(SMOKE[name], batch=True, fuse=False,
                                       flight=False, absint=absint)[2])
        for absint in (True, False)
    ]
    assert fps[0] == fps[1], f"{name}: unfused fingerprint diverged"


# ---------------------------------------------------------------------------
# Property 2: observed polarities never contradict static verdicts
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sanitized_runs():
    """One full-sanitizer, proofs-armed execution per workload, keyed by
    name; yields (sanitizer, result) pairs."""
    from repro.algorithms.kmeans import kmeans_plan
    from repro.algorithms.pagerank import pagerank_plan
    from repro.algorithms.sssp import sssp_plan
    from repro.runtime.executor import ExecOptions, QueryExecutor

    runs = {}

    def options():
        return ExecOptions(batch=True, sanitize="full", flight=False,
                           absint=True)

    cluster = _graph_cluster(200, 4.0, 4, 7)
    opts = options()
    opts.max_strata = 60
    opts.feedback_mode = "delta"
    runs["pagerank"] = QueryExecutor(cluster, opts).execute(
        pagerank_plan(mode="delta", tol=0.01))

    cluster = _graph_cluster(200, 4.0, 4, 7)
    make_start_table(cluster, 0)
    opts = options()
    opts.max_strata = 200
    runs["sssp"] = QueryExecutor(cluster, opts).execute(sssp_plan())

    points = geo_points(300, n_clusters=4, seed=7)
    centroids = sample_centroids(points, 4, seed=8)
    cluster = fresh_cluster(4)
    cluster.create_table("points",
                         ["pid:Integer", "x:Double", "y:Double"],
                         points, None)
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    opts = options()
    opts.max_strata = 120
    runs["kmeans"] = QueryExecutor(cluster, opts).execute(kmeans_plan())
    return runs


@pytest.mark.parametrize("name", ["pagerank", "sssp", "kmeans"])
def test_runtime_polarities_respect_static_proofs(name, sanitized_runs):
    result = sanitized_runs[name]
    sanitizer = result.sanitizer
    assert sanitizer is not None
    report = sanitizer.report
    assert "REX307" not in set(report.codes()), report.format()
    assert not report.has_errors(), report.format()
    observed = sanitizer.observed_polarities()
    assert observed, f"{name}: sanitizer recorded no polarities"


@pytest.mark.parametrize("name", ["pagerank", "sssp", "kmeans"])
def test_observed_kinds_subset_of_armed_proofs(name, sanitized_runs):
    """Re-derive the REX307 check from raw shadow state: every kind a
    port actually saw must sit inside that port's armed proof."""
    sanitizer = sanitized_runs[name].sanitizer
    insert_only = frozenset((DeltaOp.INSERT,))
    checked = 0
    for op_id, shadow in sanitizer._shadows.items():
        op = sanitizer._ops[op_id]
        allowed = getattr(op, "proof_polarity", None)
        insert_ports = getattr(op, "proof_insert_only_ports", None) or ()
        for port, kinds in shadow.observed.items():
            limit = insert_only if port in insert_ports else allowed
            if limit is None:
                continue
            checked += 1
            extra = frozenset(kinds) - limit
            assert not extra, (
                f"{name}: {op.name}@n{shadow.node_id} port {port} saw "
                f"{sorted(k.value for k in extra)} outside the proof "
                f"{sorted(k.value for k in limit)}")
    assert checked, f"{name}: no armed proofs were exercised"


# ---------------------------------------------------------------------------
# Property 3: a contradicting delta is a hard REX307
# ---------------------------------------------------------------------------

class _FakeProvenOp:
    name = "FakeGroupBy"
    proof_polarity = frozenset({DeltaOp.INSERT})

    def push_batch(self, deltas, port=0):
        return None


def test_proof_violation_trips_rex307():
    from repro.analysis.sanitizer import Sanitizer, _OpShadow

    sanitizer = Sanitizer("full")
    op = _FakeProvenOp()
    shadow = _OpShadow(0)
    sanitizer._shadows[id(op)] = shadow
    sanitizer._ops[id(op)] = op
    covered = sanitizer._wrap_polarity(op, shadow, batch=True)
    assert covered, "an exact proof must license assertion mode"

    op.push_batch([Delta(DeltaOp.INSERT, (1, 2))], 0)
    assert "REX307" not in set(sanitizer.report.codes())

    op.push_batch([Delta(DeltaOp.REPLACE, (1, 3), old=(1, 2))], 0)
    codes = set(sanitizer.report.codes())
    assert "REX307" in codes, sanitizer.report.format()
    assert sanitizer.report.has_errors()
    observed = sanitizer.observed_polarities()
    assert observed["FakeGroupBy@n0"][0] == frozenset(
        {DeltaOp.INSERT, DeltaOp.REPLACE})
