"""Unit tests for schemas and RQL types."""

import pytest

from repro.common import Field, Schema, SchemaError, SQLType


class TestSQLType:
    def test_parse_canonical_names(self):
        assert SQLType.parse("Integer") is SQLType.INTEGER
        assert SQLType.parse("Double") is SQLType.DOUBLE
        assert SQLType.parse("Varchar") is SQLType.VARCHAR
        assert SQLType.parse("Boolean") is SQLType.BOOLEAN

    def test_parse_aliases(self):
        assert SQLType.parse("int") is SQLType.INTEGER
        assert SQLType.parse("float") is SQLType.DOUBLE
        assert SQLType.parse("string") is SQLType.VARCHAR

    def test_parse_unknown_raises(self):
        with pytest.raises(SchemaError):
            SQLType.parse("Blob")

    def test_integer_accepts(self):
        assert SQLType.INTEGER.accepts(5)
        assert not SQLType.INTEGER.accepts(5.0)
        assert not SQLType.INTEGER.accepts(True)
        assert SQLType.INTEGER.accepts(None)  # SQL NULL

    def test_double_accepts_int_widening(self):
        assert SQLType.DOUBLE.accepts(5)
        assert SQLType.DOUBLE.accepts(5.5)
        assert not SQLType.DOUBLE.accepts("5")

    def test_any_accepts_everything(self):
        assert SQLType.ANY.accepts(object())

    def test_numeric_predicate(self):
        assert SQLType.INTEGER.is_numeric()
        assert SQLType.DOUBLE.is_numeric()
        assert not SQLType.VARCHAR.is_numeric()


class TestSchema:
    def test_of_parses_specs(self):
        s = Schema.of("srcId:Integer", "pr:Double")
        assert s.names() == ["srcId", "pr"]
        assert s[0].type is SQLType.INTEGER

    def test_of_defaults_to_any(self):
        assert Schema.of("x")[0].type is SQLType.ANY

    def test_of_qualified(self):
        s = Schema.of("graph.srcId:Integer")
        assert s[0].relation == "graph"
        assert s.index_of("graph.srcId") == 0
        assert s.index_of("srcId") == 0

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").index_of("b")

    def test_ambiguous_unqualified_raises(self):
        s = Schema.of("l.id:Integer", "r.id:Integer")
        with pytest.raises(SchemaError):
            s.index_of("id")
        assert s.index_of("l.id") == 0
        assert s.index_of("r.id") == 1

    def test_project(self):
        s = Schema.of("a:Integer", "b:Double", "c:Varchar")
        p = s.project(["c", "a"])
        assert p.names() == ["c", "a"]
        assert p[0].type is SQLType.VARCHAR

    def test_concat(self):
        s = Schema.of("a:Integer").concat(Schema.of("b:Double"))
        assert s.names() == ["a", "b"]

    def test_renamed_requalifies(self):
        s = Schema.of("a:Integer").renamed("t")
        assert s[0].relation == "t"
        assert s.index_of("t.a") == 0

    def test_validate_row_arity(self):
        with pytest.raises(SchemaError):
            Schema.of("a:Integer").validate_row((1, 2))

    def test_validate_row_type(self):
        with pytest.raises(SchemaError):
            Schema.of("a:Integer").validate_row(("x",))
        Schema.of("a:Integer").validate_row((1,))
        Schema.of("a:Double").validate_row((None,))

    def test_equality_and_hash(self):
        assert Schema.of("a:Integer") == Schema.of("a:Integer")
        assert hash(Schema.of("a:Integer")) == hash(Schema.of("a:Integer"))
        assert Schema.of("a:Integer") != Schema.of("a:Double")

    def test_field_matches_qualified(self):
        f = Field("x", SQLType.INTEGER, relation="t")
        assert f.matches("t.x")
        assert f.matches("x")
        assert not f.matches("u.x")
