"""Metrics export: OpenMetrics exposition, JSON dumps, sparklines, CLI."""

import json

from repro.obs.export import (SPARK_CHARS, metric_name, openmetrics,
                              registry_json, sparkline, telemetry_document)
from repro.obs.registry import MetricsRegistry


def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("telemetry.sampler.samples").inc(3)
    reg.gauge("telemetry.sampler.sim_seconds").set(1.5)
    h = reg.histogram("telemetry.stratum.seconds_hist")
    for v in (0.3, 0.6, 1.5):
        h.record(v)
    s = reg.series("telemetry.stratum.delta_count")
    s.append(0, 10)
    s.append(1, 4)
    return reg


class TestMetricName:
    def test_dots_become_underscores(self):
        assert (metric_name("telemetry.stratum.delta_count")
                == "telemetry_stratum_delta_count")

    def test_arbitrary_runes_are_mapped(self):
        assert (metric_name("net.exchange.x0.a7/bytes")
                == "net_exchange_x0_a7_bytes")

    def test_leading_digit_is_prefixed(self):
        assert metric_name("0bad").startswith("_")


class TestOpenMetrics:
    def test_counter_rendering(self):
        text = openmetrics(_populated_registry())
        assert "# TYPE telemetry_sampler_samples counter" in text
        assert "telemetry_sampler_samples_total 3" in text

    def test_gauge_rendering(self):
        text = openmetrics(_populated_registry())
        assert "# TYPE telemetry_sampler_sim_seconds gauge" in text
        assert "telemetry_sampler_sim_seconds 1.5" in text

    def test_histogram_buckets_are_cumulative(self):
        text = openmetrics(_populated_registry())
        # 0.3 -> le=0.5, 0.6 -> le=1, 1.5 -> le=2; cumulative 1, 2, 3.
        assert 'telemetry_stratum_seconds_hist_bucket{le="0.5"} 1' in text
        assert 'telemetry_stratum_seconds_hist_bucket{le="1"} 2' in text
        assert 'telemetry_stratum_seconds_hist_bucket{le="2"} 3' in text
        assert 'telemetry_stratum_seconds_hist_bucket{le="+Inf"} 3' in text
        assert "telemetry_stratum_seconds_hist_count 3" in text
        assert "telemetry_stratum_seconds_hist_sum 2.4" in text

    def test_series_exposes_every_ring_point(self):
        text = openmetrics(_populated_registry())
        assert 'telemetry_stratum_delta_count{index="0"} 10' in text
        assert 'telemetry_stratum_delta_count{index="1"} 4' in text

    def test_terminator_and_prefix_filter(self):
        reg = _populated_registry()
        reg.counter("op.n0.tuples_in").inc()
        text = openmetrics(reg, prefix="telemetry.")
        assert text.endswith("# EOF\n")
        assert "op_n0_tuples_in" not in text
        assert openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_registry_json_round_trips(self):
        doc = json.loads(registry_json(_populated_registry()))
        assert doc["telemetry.sampler.samples"] == 3
        assert doc["telemetry.stratum.delta_count"] == [[0, 10], [1, 4]]
        assert doc["telemetry.stratum.seconds_hist"]["count"] == 3

    def test_telemetry_document_scopes_to_telemetry(self):
        reg = _populated_registry()
        reg.counter("op.n0.tuples_in").inc()
        doc = telemetry_document(reg)
        assert doc["format"] == "rex-telemetry/1"
        assert "op.n0.tuples_in" not in doc["metrics"]
        assert "telemetry.sampler.samples" in doc["metrics"]


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == SPARK_CHARS[0] * 3

    def test_min_and_max_hit_the_ramp_ends(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]
        assert len(line) == 4

    def test_downsampling_preserves_spikes(self):
        values = [1.0] * 64
        values[37] = 100.0
        line = sparkline(values, width=8)
        assert len(line) == 8
        assert SPARK_CHARS[-1] in line  # the spike survives bucket-max

    def test_no_downsampling_when_short_enough(self):
        assert len(sparkline([1, 2, 3], width=10)) == 3


class TestCliTelemetry:
    def _run(self, tmp_path, capsys, *extra):
        from repro.cli import main

        out = tmp_path / "metrics.txt"
        rc = main(["telemetry", "--workload", "kmeans", "--nodes", "2",
                   "--scale", "30", "--out", str(out), *extra])
        captured = capsys.readouterr()
        return rc, out, captured

    def test_openmetrics_output(self, tmp_path, capsys):
        rc, out, _ = self._run(tmp_path, capsys)
        assert rc == 0
        text = out.read_text()
        assert text.endswith("# EOF\n")
        assert "telemetry_stratum_delta_count" in text
        assert "telemetry_sampler_samples_total" in text

    def test_json_output(self, tmp_path, capsys):
        rc, out, _ = self._run(tmp_path, capsys, "--format", "json")
        assert rc == 0
        doc = json.loads(out.read_text())
        assert "telemetry.stratum.seconds" in doc
