"""Unit + property tests for the cost model, workers and cluster."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Cluster, CostModel, ResourceUsage
from repro.common.errors import ExecutionError, ReproError

nonneg = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestCostModel:
    def test_defaults_positive(self):
        cm = CostModel()
        assert cm.cpu_tuple_cost > 0
        assert cm.net_bandwidth > cm.disk_bandwidth > 0
        assert cm.hadoop_job_startup > cm.rex_query_startup

    def test_udf_batching_amortizes(self):
        cm = CostModel()
        assert cm.udf_cost_per_tuple(batched=True) < \
            cm.udf_cost_per_tuple(batched=False)

    def test_unbatched_when_batch_is_one(self):
        cm = CostModel(udf_batch_size=1)
        assert cm.udf_cost_per_tuple(batched=True) == \
            cm.udf_cost_per_tuple(batched=False)

    def test_sort_time_superlinear(self):
        cm = CostModel()
        assert cm.sort_time(0) == 0.0
        assert cm.sort_time(1) == 0.0
        assert cm.sort_time(20_000) > 2 * cm.sort_time(10_000)

    def test_scaled_replaces_fields(self):
        cm = CostModel().scaled(hadoop_job_startup=1.0)
        assert cm.hadoop_job_startup == 1.0
        assert cm.cpu_tuple_cost == CostModel().cpu_tuple_cost

    def test_cpu_factor_defaults_to_one(self):
        cm = CostModel(cpu_speed={3: 2.0})
        assert cm.cpu_factor(3) == 2.0
        assert cm.cpu_factor(0) == 1.0


class TestResourceUsage:
    @given(nonneg, nonneg, nonneg, nonneg,
           st.floats(min_value=0.0, max_value=1.0))
    def test_combined_time_bounded_by_peak_and_total(self, c, d, ni, no,
                                                     overlap):
        usage = ResourceUsage(cpu=c, disk=d, net_in=ni, net_out=no)
        t = usage.combined_time(overlap)
        assert usage.peak() - 1e-12 <= t <= usage.total() + 1e-12

    def test_full_overlap_is_max(self):
        usage = ResourceUsage(cpu=3.0, disk=1.0)
        assert usage.combined_time(1.0) == 3.0

    def test_no_overlap_is_sum(self):
        usage = ResourceUsage(cpu=3.0, disk=1.0)
        assert usage.combined_time(0.0) == 4.0

    def test_add_accumulates(self):
        a = ResourceUsage(cpu=1.0)
        a.add(ResourceUsage(cpu=2.0, disk=1.0))
        assert a.cpu == 3.0 and a.disk == 1.0


class TestWorkerCharging:
    def test_cpu_scaled_by_speed(self):
        cluster = Cluster(2, cost_model=CostModel(cpu_speed={1: 2.0}))
        cluster.worker(0).charge_cpu(1.0)
        cluster.worker(1).charge_cpu(1.0)
        assert cluster.worker(0).stratum_usage.cpu == 1.0
        assert cluster.worker(1).stratum_usage.cpu == 0.5  # 2x faster

    def test_disk_and_net_charging(self):
        cluster = Cluster(1)
        w = cluster.worker(0)
        w.charge_disk_bytes(80_000_000)
        assert w.stratum_usage.disk == pytest.approx(1.0)
        w.charge_net_out(110_000_000, messages=0)
        assert w.stratum_usage.net_out == pytest.approx(1.0)

    def test_end_stratum_rolls_totals(self):
        cluster = Cluster(1)
        w = cluster.worker(0)
        w.charge_cpu(0.5)
        usage = w.end_stratum()
        assert usage.cpu == 0.5
        assert w.stratum_usage.cpu == 0.0
        assert w.total_usage.cpu == 0.5

    def test_state_bytes_spill_to_disk(self):
        cm = CostModel(worker_memory_bytes=100)
        cluster = Cluster(1, cost_model=cm)
        w = cluster.worker(0)
        w.add_state_bytes(50)
        assert w.stratum_usage.disk == 0.0   # under budget
        w.add_state_bytes(200)
        assert w.stratum_usage.disk > 0.0    # spilled


class TestCluster:
    def test_requires_one_node(self):
        with pytest.raises(ReproError):
            Cluster(0)

    def test_create_table_registers(self):
        cluster = Cluster(2)
        cluster.create_table("t", ["a:Integer"], [(1,), (2,)], "a")
        assert cluster.catalog.get("t").total_rows() == 2

    def test_fail_node(self):
        cluster = Cluster(3)
        cluster.fail_node(1)
        assert not cluster.workers[1].alive
        assert [w.id for w in cluster.alive_workers()] == [0, 2]
        with pytest.raises(ExecutionError):
            cluster.fail_node(1)

    def test_stratum_wall_time_is_slowest_live_worker(self):
        cluster = Cluster(3)
        cluster.worker(0).charge_cpu(1.0)
        cluster.worker(1).charge_cpu(5.0)
        cluster.fail_node(2)
        assert cluster.end_stratum_wall_time() == pytest.approx(5.0)

    def test_network_charges_both_endpoints(self):
        cluster = Cluster(2)
        from repro.common import insert
        from repro.net import Message

        cluster.network.register(1, "x", lambda m: None)
        cluster.network.send(Message(src=0, dst=1, exchange="x",
                                     deltas=[insert((1, 2.0))]))
        assert cluster.worker(0).stratum_usage.net_out > 0
        assert cluster.worker(1).stratum_usage.net_in > 0

    def test_reset_usage(self):
        cluster = Cluster(1)
        cluster.worker(0).charge_cpu(1.0)
        cluster.reset_usage()
        assert cluster.worker(0).stratum_usage.cpu == 0.0
