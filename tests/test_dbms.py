"""Tests for the DBMS X recursive-SQL comparator."""

import pytest

from repro.algorithms import pagerank_reference, run_pagerank
from repro.cluster import Cluster
from repro.datasets import dbpedia_like
from repro.dbms import DBMSXEngine

EDGES = dbpedia_like(600, avg_out_degree=6, seed=41)


class TestDBMSX:
    def test_pagerank_matches_reference(self):
        engine = DBMSXEngine()
        scores, _ = engine.pagerank(EDGES, iterations=100, tol=0.0,
                                    stop_on_convergence=False)
        expected = pagerank_reference(EDGES)
        for v in expected:
            assert scores[v] == pytest.approx(expected[v], rel=1e-4)

    def test_accumulating_state_grows(self):
        """The recursive spool grows every iteration — the inefficiency the
        paper attributes to recursive SQL."""
        engine = DBMSXEngine()
        _, metrics = engine.pagerank(EDGES, iterations=10,
                                     stop_on_convergence=False)
        sizes = [it.mutable_size for it in metrics.iterations]
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_later_iterations_cost_more(self):
        """Index maintenance over the growing spool makes late iterations
        (slightly) costlier, never cheaper — no delta refinement."""
        engine = DBMSXEngine()
        _, metrics = engine.pagerank(EDGES, iterations=12,
                                     stop_on_convergence=False)
        seconds = metrics.per_iteration_seconds()
        assert seconds[-1] >= seconds[0]

    def test_convergence_stop(self):
        engine = DBMSXEngine()
        _, metrics = engine.pagerank(EDGES, iterations=200, tol=0.01)
        assert metrics.num_iterations < 200
        assert metrics.iterations[-1].delta_count == 0

    def test_single_node_rex_beats_dbms(self):
        """Figure 10a: on one machine, REX delta is ~30% faster.  Needs a
        work-dominated scale — at toy sizes the per-stratum barrier
        overhead (charged identically to both engines) hides the gap."""
        edges = dbpedia_like(2000, avg_out_degree=10, seed=41)
        engine = DBMSXEngine()
        _, dbms_m = engine.pagerank(edges, iterations=80, tol=0.01)
        cluster = Cluster(1)
        cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                             edges, "srcId")
        _, rex_m = run_pagerank(cluster, mode="delta", tol=0.01)
        assert rex_m.total_seconds() < dbms_m.total_seconds()

    def test_linear_speedup_lower_bound(self):
        engine = DBMSXEngine()
        _, metrics = engine.pagerank(EDGES, iterations=10,
                                     stop_on_convergence=False)
        total = metrics.total_seconds()
        assert DBMSXEngine.linear_speedup_lower_bound(metrics, 4) == \
            pytest.approx(total / 4)
        assert DBMSXEngine.linear_speedup_lower_bound(metrics, 0) == total
