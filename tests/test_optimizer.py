"""Tests for statistics, cost estimation, and the plan transformations."""

import pytest

from repro.cluster import Cluster
from repro.common.schema import Field, SQLType
from repro.operators.expressions import BinaryOp, ColumnRef, FuncCall, Literal
from repro.optimizer import (
    CostEstimator,
    LAggCall,
    LFilter,
    LFixpoint,
    LGroupBy,
    LJoin,
    LRehash,
    LScan,
    Optimizer,
    StatisticsCatalog,
    add_exchanges,
    analyze_table,
    explain,
    lower,
    normalize_filter_ranks,
    push_pre_aggregation,
)
from repro.optimizer.logical import LFeedback, LProject
from repro.rql import RQLSession
from repro.runtime import QueryExecutor
from repro.udf import Sum, udf


def make_cluster():
    cluster = Cluster(4)
    cluster.create_table("big", ["id:Integer", "g:Integer", "v:Double"],
                         [(i, i % 10, float(i)) for i in range(2000)], "id")
    cluster.create_table("small", ["g:Integer", "name:Varchar"],
                         [(i, f"g{i}") for i in range(10)], "g")
    return cluster


def scan(cluster, name):
    table = cluster.catalog.get(name)
    return LScan(name, table.schema, table.partition_key)


class TestStatistics:
    def test_analyze_counts_rows_and_distincts(self):
        cluster = make_cluster()
        stats = analyze_table(cluster.catalog.get("big"))
        assert stats.rows == 2000
        assert stats.distinct["id"] == 2000
        assert stats.distinct["g"] == 10
        assert stats.avg_row_bytes > 0

    def test_statistics_catalog_caches(self):
        cluster = make_cluster()
        cat = StatisticsCatalog(cluster.catalog)
        assert cat.table("big") is cat.table("big")
        cat.invalidate("big")
        assert cat.table("big").rows == 2000

    def test_unknown_column_defaults_to_rowcount(self):
        cluster = make_cluster()
        stats = analyze_table(cluster.catalog.get("big"))
        assert stats.distinct_of("nope") == 2000


class TestCostEstimation:
    def estimator(self, cluster):
        return CostEstimator(StatisticsCatalog(cluster.catalog),
                             cluster.cost, 4)

    def test_scan_estimate(self):
        cluster = make_cluster()
        est = self.estimator(cluster).estimate(scan(cluster, "big"))
        assert est.rows == 2000
        assert est.usage.disk > 0

    def test_filter_reduces_cardinality(self):
        cluster = make_cluster()
        node = LFilter(scan(cluster, "big"),
                       BinaryOp(">", ColumnRef("v"), Literal(10.0)))
        est = self.estimator(cluster).estimate(node)
        assert est.rows < 2000

    def test_join_uses_distinct_counts(self):
        cluster = make_cluster()
        join = LJoin(scan(cluster, "big"), scan(cluster, "small"),
                     ("big.g", "small.g"))
        est = self.estimator(cluster).estimate(join)
        # 2000 * 10 / max(10, 10) = 2000
        assert est.rows == pytest.approx(2000, rel=0.01)

    def test_rehash_charges_network(self):
        cluster = make_cluster()
        node = LRehash(scan(cluster, "big"), key="g")
        est = self.estimator(cluster).estimate(node)
        assert est.usage.net_out > 0

    def test_broadcast_multiplies_rows(self):
        cluster = make_cluster()
        node = LRehash(scan(cluster, "small"), key=None, broadcast=True)
        est = self.estimator(cluster).estimate(node)
        assert est.rows == pytest.approx(40)

    def test_fixpoint_iterates_and_converges(self):
        """Section 5.3: iterative estimation with cardinality capping must
        terminate and cost more than the base case alone."""
        cluster = make_cluster()
        estimator = self.estimator(cluster)
        base = scan(cluster, "big")
        recursive = LFeedback("R", base.schema.renamed("R"), "id")
        fp = LFixpoint(base, recursive, key="id", cte_name="R")
        est = estimator.estimate(fp)
        base_est = estimator.estimate(base)
        assert est.usage.total() > base_est.usage.total()
        assert est.usage.total() < float("inf")

    def test_plan_cost_positive_and_finite(self):
        cluster = make_cluster()
        cost = self.estimator(cluster).plan_cost(scan(cluster, "big"))
        assert 0 < cost < float("inf")


class TestPredicateRankOrdering:
    def test_cheap_selective_predicate_runs_first(self):
        """Section 5.1: ascending rank = (sel - 1) / cost."""
        cluster = make_cluster()
        estimator = CostEstimator(StatisticsCatalog(cluster.catalog),
                                  cluster.cost, 4)

        @udf(selectivity=0.9)
        def expensive(v):
            return v > 0

        base = scan(cluster, "big")
        cheap_pred = BinaryOp(">", ColumnRef("v"), Literal(5.0))
        costly_pred = FuncCall(expensive, [ColumnRef("v")])
        # Build with the expensive filter at the bottom (wrong order).
        node = LFilter(LFilter(base, costly_pred, selectivity=0.9,
                               cost_per_tuple=1e-3),
                       cheap_pred, selectivity=0.1)
        fixed = normalize_filter_ranks(node, estimator)
        # After normalization the cheap/selective filter sits lower.
        assert fixed.predicate is costly_pred
        assert fixed.children[0].predicate is cheap_pred

    def test_already_ordered_untouched(self):
        cluster = make_cluster()
        estimator = CostEstimator(StatisticsCatalog(cluster.catalog),
                                  cluster.cost, 4)
        base = scan(cluster, "big")
        cheap = BinaryOp(">", ColumnRef("v"), Literal(5.0))
        node = LFilter(base, cheap, selectivity=0.1)
        result = normalize_filter_ranks(node, estimator)
        assert result.predicate is cheap
        assert isinstance(result.children[0], LScan)


class TestPreAggregation:
    def groupby(self, cluster):
        return LGroupBy(
            scan(cluster, "big"), ["g"],
            [LAggCall("sum", Sum, [ColumnRef("v")],
                      [Field("s", SQLType.ANY)], composable=True)])

    def test_rewrite_shape(self):
        cluster = make_cluster()
        pre = push_pre_aggregation(self.groupby(cluster))
        assert isinstance(pre, LGroupBy) and not pre.pre_aggregated
        rehash = pre.children[0]
        assert isinstance(rehash, LRehash)
        partial = rehash.children[0]
        assert isinstance(partial, LGroupBy) and partial.pre_aggregated

    def test_noncomposable_not_rewritten(self):
        cluster = make_cluster()
        gb = LGroupBy(
            scan(cluster, "big"), ["g"],
            [LAggCall("collect", lambda: __import__(
                "repro.udf.builtins", fromlist=["CollectList"]).CollectList(),
                [ColumnRef("v")], [Field("c", SQLType.ANY)],
                composable=False)])
        assert push_pre_aggregation(gb) is None

    def test_preaggregated_plan_produces_same_result(self):
        cluster = make_cluster()
        direct = add_exchanges(self.groupby(cluster))
        pre = add_exchanges(push_pre_aggregation(self.groupby(make_cluster())))
        r1 = QueryExecutor(make_cluster_with_data()).execute(lower(direct))
        r2 = QueryExecutor(make_cluster_with_data()).execute(lower(pre))
        assert sorted(r1.rows) == sorted(r2.rows)

    def test_preagg_reduces_network_bytes(self):
        c1 = make_cluster_with_data()
        direct = add_exchanges(self.groupby(c1))
        m1 = QueryExecutor(c1).execute(lower(direct)).metrics
        c2 = make_cluster_with_data()
        pre = add_exchanges(push_pre_aggregation(self.groupby(c2)))
        m2 = QueryExecutor(c2).execute(lower(pre)).metrics
        assert m2.total_bytes() < m1.total_bytes()

    def test_optimizer_chooses_preagg_for_reducible_data(self):
        cluster = make_cluster_with_data()
        optimizer = Optimizer(cluster)
        chosen = optimizer.optimize(self.groupby(cluster))
        labels = [n.label() for n in chosen.walk()]
        assert any("PreAgg" in lbl for lbl in labels), labels


def make_cluster_with_data():
    return make_cluster()


class TestOptimizerEndToEnd:
    def test_filter_pushed_below_join(self):
        cluster = make_cluster()
        session = RQLSession(cluster)
        plan = session.logical_plan(
            "SELECT id, name FROM big, small "
            "WHERE big.g = small.g AND v > 100.0")
        # The selection on big.v should sit below the join.
        text = explain(plan)
        join_line = next(i for i, l in enumerate(text.splitlines())
                         if "Join" in l)
        filter_line = next(i for i, l in enumerate(text.splitlines())
                           if "Filter" in l)
        assert filter_line > join_line  # deeper in the tree = printed later

    def test_optimized_query_correct(self):
        cluster = make_cluster()
        session = RQLSession(cluster)
        result = session.execute(
            "SELECT id, name FROM big, small "
            "WHERE big.g = small.g AND v > 1990.0")
        expected = sorted((i, f"g{i % 10}") for i in range(1991, 2000))
        assert sorted(result.rows) == expected

    def test_report_counts_candidates(self):
        cluster = make_cluster()
        session = RQLSession(cluster)
        node = session.logical_plan(
            "SELECT g, sum(v) FROM big GROUP BY g")
        optimizer = Optimizer(cluster)
        raw = RQLSession(cluster, optimize=False).logical_plan(
            "SELECT g, sum(v) FROM big GROUP BY g")
        _, report = optimizer.optimize_with_report(raw)
        assert report.candidates_considered >= 2
        assert report.best_cost < float("inf")

    def test_explain_renders_tree(self):
        cluster = make_cluster()
        session = RQLSession(cluster)
        text = session.explain("SELECT g, sum(v) FROM big GROUP BY g",
                               with_estimates=True)
        assert "Scan(big)" in text
        assert "rows≈" in text
