"""Unit + property tests for the pipelined hash join delta rules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import DeltaOp, delete, insert, replace, update
from repro.common.deltas import apply_deltas
from repro.common.errors import ExecutionError
from repro.operators import HashJoin
from repro.operators.join import LEFT, RIGHT
from repro.udf.aggregates import JoinDeltaHandler

from helpers import Capture, wire


def make_join(handler=None, handler_side=RIGHT):
    sink = Capture()
    join = HashJoin(left_key=lambda r: (r[0],), right_key=lambda r: (r[0],),
                    handler=handler, handler_side=handler_side)
    wire(join, sink)
    return join, sink


class TestInsertProbe:
    def test_matching_rows_join(self):
        join, sink = make_join()
        join.receive(insert((1, "a")), LEFT)
        join.receive(insert((1, "b")), RIGHT)
        assert sink.rows() == [(1, "a", 1, "b")]

    def test_nonmatching_rows_do_not_join(self):
        join, sink = make_join()
        join.receive(insert((1, "a")), LEFT)
        join.receive(insert((2, "b")), RIGHT)
        assert sink.rows() == []

    def test_symmetric_pipelining(self):
        """Late arrivals on either side probe earlier state."""
        join, sink = make_join()
        join.receive(insert((1, "r")), RIGHT)
        join.receive(insert((1, "l")), LEFT)
        assert sink.rows() == [(1, "l", 1, "r")]

    def test_duplicates_multiply(self):
        join, sink = make_join()
        join.receive(insert((1, "a")), LEFT)
        join.receive(insert((1, "a")), LEFT)
        join.receive(insert((1, "x")), RIGHT)
        assert len(sink.rows()) == 2


class TestDeleteReplace:
    def test_delete_emits_delete_pairs(self):
        join, sink = make_join()
        join.receive(insert((1, "a")), LEFT)
        join.receive(insert((1, "x")), RIGHT)
        sink.clear()
        join.receive(delete((1, "a")), LEFT)
        assert [d.op for d in sink.deltas] == [DeltaOp.DELETE]
        assert sink.deltas[0].row == (1, "a", 1, "x")

    def test_delete_absent_row_raises(self):
        join, sink = make_join()
        with pytest.raises(ExecutionError):
            join.receive(delete((1, "a")), LEFT)

    def test_replace_same_key_emits_replace(self):
        join, sink = make_join()
        join.receive(insert((1, "old")), LEFT)
        join.receive(insert((1, "x")), RIGHT)
        sink.clear()
        join.receive(replace((1, "old"), (1, "new")), LEFT)
        d = sink.deltas[0]
        assert d.op is DeltaOp.REPLACE
        assert d.old == (1, "old", 1, "x") and d.row == (1, "new", 1, "x")

    def test_replace_changing_key_decomposes(self):
        join, sink = make_join()
        join.receive(insert((1, "v")), LEFT)
        join.receive(insert((1, "x")), RIGHT)
        join.receive(insert((2, "y")), RIGHT)
        sink.clear()
        join.receive(replace((1, "v"), (2, "v")), LEFT)
        ops = sorted(d.op.name for d in sink.deltas)
        assert ops == ["DELETE", "INSERT"]

    def test_update_without_handler_probes_passthrough(self):
        """No handler: annotation rides along, state untouched."""
        join, sink = make_join(handler=None)
        join.receive(insert((1, "x")), RIGHT)
        join.receive(update((1, 0.5), payload=0.5), LEFT)
        d = sink.deltas[0]
        assert d.op is DeltaOp.UPDATE and d.payload == 0.5
        assert d.row == (1, 0.5, 1, "x")
        assert join.state_size() == 1  # only the right insert is stored


class _DiffHandler(JoinDeltaHandler):
    """PRAgg-style: tracks a value per key on the handler side, emits the
    diff scaled across the opposite bucket."""

    def update(self, left_bucket, right_bucket, delta, side):
        key, value = delta.row
        prev = right_bucket[0][1] if right_bucket else 0.0
        if right_bucket:
            right_bucket[0] = (key, value)
        else:
            right_bucket.append((key, value))
        diff = value - prev
        return [update((nbr,), payload=diff / max(len(left_bucket), 1))
                for _, nbr in left_bucket]


class TestJoinHandler:
    def test_handler_receives_buckets_and_emits(self):
        join, sink = make_join(handler=_DiffHandler(), handler_side=RIGHT)
        join.receive(insert((1, 10)), LEFT)   # edge 1 -> 10
        join.receive(insert((1, 11)), LEFT)   # edge 1 -> 11
        join.receive(update((1, 1.0), payload=None), RIGHT)
        assert len(sink.deltas) == 2
        assert all(d.op is DeltaOp.UPDATE for d in sink.deltas)
        assert sink.deltas[0].payload == pytest.approx(0.5)

    def test_handler_state_persists_across_deltas(self):
        join, sink = make_join(handler=_DiffHandler(), handler_side=RIGHT)
        join.receive(insert((1, 10)), LEFT)
        join.receive(update((1, 1.0), payload=None), RIGHT)
        sink.clear()
        join.receive(update((1, 1.5), payload=None), RIGHT)
        assert sink.deltas[0].payload == pytest.approx(0.5)

    def test_non_handler_side_uses_standard_rules(self):
        join, sink = make_join(handler=_DiffHandler(), handler_side=RIGHT)
        join.receive(insert((1, 10)), LEFT)
        assert sink.deltas == []  # plain insert, no right match yet


# ---------------------------------------------------------------------------
# Property: join delta stream == recomputed join of the surviving relations.
# ---------------------------------------------------------------------------

keys = st.integers(min_value=0, max_value=4)
payloads = st.integers(min_value=0, max_value=3)


@st.composite
def join_script(draw):
    """Interleaved legal insert/delete/replace histories for both sides."""
    live = ([], [])
    script = []
    for _ in range(draw(st.integers(min_value=0, max_value=25))):
        side = draw(st.integers(min_value=0, max_value=1))
        rows = live[side]
        action = draw(st.integers(min_value=0, max_value=2))
        if action == 0 or not rows:
            row = (draw(keys), draw(payloads), side)
            rows.append(row)
            script.append((insert(row), side))
        elif action == 1:
            row = rows.pop(draw(st.integers(0, len(rows) - 1)))
            script.append((delete(row), side))
        else:
            idx = draw(st.integers(0, len(rows) - 1))
            old = rows[idx]
            new = (draw(keys), draw(payloads), side)
            rows[idx] = new
            script.append((replace(old, new), side))
    return script, live


@given(join_script())
def test_join_deltas_equal_recomputation(script_and_live):
    script, live = script_and_live
    join, sink = make_join()
    for delta, side in script:
        join.receive(delta, side)
    # Materialize the emitted delta stream (bag semantics via counting).
    from collections import Counter
    bag = Counter()
    for d in sink.deltas:
        if d.op is DeltaOp.INSERT:
            bag[d.row] += 1
        elif d.op is DeltaOp.DELETE:
            bag[d.row] -= 1
        else:
            bag[d.old] -= 1
            bag[d.row] += 1
    expected = Counter(
        l + r for l in live[0] for r in live[1] if l[0] == r[0]
    )
    assert +bag == expected
