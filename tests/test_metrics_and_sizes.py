"""Unit tests for query metrics and byte-size estimation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import QueryMetrics
from repro.common.sizes import row_bytes, value_bytes


class TestQueryMetrics:
    def make(self):
        m = QueryMetrics(startup_seconds=1.0, num_nodes=4)
        for s, (secs, b, d) in enumerate([(2.0, 100, 5), (1.0, 50, 3),
                                          (0.5, 10, 0)]):
            it = m.begin_iteration(s)
            it.seconds = secs
            it.bytes_sent = b
            it.delta_count = d
        return m

    def test_totals(self):
        m = self.make()
        assert m.total_seconds() == pytest.approx(4.5)
        assert m.total_bytes() == 160
        assert m.num_iterations == 3

    def test_cumulative_series_includes_startup(self):
        m = self.make()
        assert m.cumulative_seconds() == pytest.approx([3.0, 4.0, 4.5])

    def test_delta_series(self):
        assert self.make().delta_series() == [5, 3, 0]

    def test_recovery_added(self):
        m = self.make()
        m.recovery_seconds = 2.0
        assert m.total_seconds() == pytest.approx(6.5)
        assert m.cumulative_seconds()[0] == pytest.approx(5.0)

    def test_avg_bandwidth(self):
        m = self.make()
        assert m.avg_bandwidth_per_node() == pytest.approx(
            160 / 4 / 4.5)

    def test_empty_metrics_safe(self):
        m = QueryMetrics()
        assert m.total_seconds() == 0.0
        assert m.avg_bandwidth_per_node() == 0.0
        assert m.cumulative_seconds() == []

    def test_recovery_reaches_cumulative_and_total_consistently(self):
        # recovery time charged to the query must land in both views:
        # the last cumulative point equals total_seconds.
        m = self.make()
        m.recovery_seconds = 2.0
        assert m.cumulative_seconds()[-1] == pytest.approx(
            m.total_seconds())

    def test_bandwidth_with_startup_but_no_iterations(self):
        # duration > 0 but zero bytes: well-defined 0.0, not an error
        m = QueryMetrics(startup_seconds=1.5, num_nodes=4)
        assert m.avg_bandwidth_per_node() == 0.0

    def test_bandwidth_zero_nodes_guarded(self):
        m = self.make()
        m.num_nodes = 0
        assert m.avg_bandwidth_per_node() == 0.0

    def test_fingerprint_digests_per_iteration_state(self):
        a, b = self.make(), self.make()
        assert a.fingerprint() == b.fingerprint()
        b.iterations[1].delta_count += 1
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_ignores_wall_clock_only_fields(self):
        # node count and result rows are presentation-side; the simulator
        # contract covers iteration structure and simulated seconds.
        a, b = self.make(), self.make()
        b.num_nodes = 99
        b.result_rows = 123
        assert a.fingerprint() == b.fingerprint()


class TestSizes:
    def test_scalars(self):
        assert value_bytes(None) == 1
        assert value_bytes(True) == 1
        assert value_bytes(42) == 8
        assert value_bytes(3.14) == 8
        assert value_bytes("abcd") == 4

    def test_unicode_strings_use_utf8_length(self):
        assert value_bytes("héllo") == len("héllo".encode("utf-8"))

    def test_collections_recurse(self):
        assert value_bytes((1, 2)) == 4 + 16
        assert value_bytes([1, 2, 3]) == 4 + 24
        assert value_bytes({1: 2}) > 8

    def test_opaque_objects_flat_envelope(self):
        assert value_bytes(object()) == 16

    def test_row_bytes_framing(self):
        assert row_bytes((1,)) == 4 + 8
        assert row_bytes(()) == 4

    @given(st.lists(st.one_of(st.integers(), st.floats(allow_nan=False),
                              st.text(max_size=10)), max_size=8))
    def test_row_bytes_positive_and_monotone(self, values):
        row = tuple(values)
        assert row_bytes(row) >= 4
        assert row_bytes(row + (1,)) > row_bytes(row)
