"""Perf-regression gate: baseline comparison semantics and the CLI."""

import json

import pytest

from repro.bench.regress import (DEFAULT_REL_TOLERANCE, DEFAULT_TOLERANCE,
                                 baseline_wall, compare, load_baseline, main)


def _payload(smoke, nodes, walls, simulated=None, strata=None):
    """A minimal BENCH_5-shaped payload."""
    workloads = {}
    for name, wall in walls.items():
        workloads[name] = {
            "fused_wall_seconds": wall,
            "simulated_seconds": (simulated or {}).get(name, 10.0),
            "strata": (strata or {}).get(name, 20),
        }
    return {"benchmark": "wallclock-fusion", "smoke": smoke,
            "nodes": nodes, "workloads": workloads}


class TestCompareAbsolute:
    """Same smoke/nodes config: hard simulated identity + absolute walls."""

    def test_within_tolerance_passes(self):
        base = _payload(False, 8, {"pagerank": 1.0, "sssp": 2.0})
        cur = _payload(False, 8, {"pagerank": 1.2, "sssp": 2.1})
        report = compare(cur, base)
        assert report["config_match"] is True
        assert report["mode"] == "absolute"
        assert report["ok"] is True
        assert report["workloads"]["pagerank"]["verdict"] == "ok"
        assert report["workloads"]["pagerank"]["limit_seconds"] == 1.25

    def test_beyond_tolerance_fails(self):
        base = _payload(False, 8, {"pagerank": 1.0})
        cur = _payload(False, 8, {"pagerank": 1.3})
        report = compare(cur, base)
        assert report["ok"] is False
        assert report["workloads"]["pagerank"]["verdict"] == "slower"
        assert "pagerank" in report["failures"][0]

    def test_custom_tolerance(self):
        base = _payload(False, 8, {"pagerank": 1.0})
        cur = _payload(False, 8, {"pagerank": 1.3})
        assert compare(cur, base, tolerance=0.5)["ok"] is True

    def test_simulated_divergence_is_hard_failure(self):
        base = _payload(False, 8, {"pagerank": 1.0},
                        simulated={"pagerank": 10.0})
        # Faster wall, but the deterministic cost model moved: fail.
        cur = _payload(False, 8, {"pagerank": 0.5},
                       simulated={"pagerank": 11.0})
        report = compare(cur, base)
        assert report["ok"] is False
        assert (report["workloads"]["pagerank"]["verdict"]
                == "simulated-diverged")
        assert "simulated_seconds" in report["failures"][0]

    def test_strata_divergence_is_hard_failure(self):
        base = _payload(False, 8, {"pagerank": 1.0}, strata={"pagerank": 20})
        cur = _payload(False, 8, {"pagerank": 1.0}, strata={"pagerank": 21})
        report = compare(cur, base)
        assert report["ok"] is False
        assert "strata" in report["failures"][0]

    def test_missing_baseline_workload_is_skipped(self):
        base = _payload(False, 8, {"pagerank": 1.0})
        cur = _payload(False, 8, {"pagerank": 1.0, "kmeans": 5.0})
        report = compare(cur, base)
        assert report["ok"] is True
        assert report["skipped"] == ["kmeans"]
        assert report["workloads"]["kmeans"]["verdict"] == "no-baseline"

    def test_bench1_batch_wall_is_accepted(self):
        assert baseline_wall({"batch_wall_seconds": 3.0}) == 3.0
        assert baseline_wall({"fused_wall_seconds": 1.0,
                              "batch_wall_seconds": 3.0}) == 1.0
        assert baseline_wall({}) is None


class TestCompareNormalized:
    """Config mismatch (CI smoke vs full baseline): geomean-normalized."""

    def test_uniform_slowdown_passes(self):
        base = _payload(False, 8, {"pagerank": 10.0, "sssp": 20.0,
                                   "kmeans": 30.0})
        # Smoke run on a slower machine: everything is 100x faster but
        # uniformly so — no workload regressed relative to the others.
        cur = _payload(True, 8, {"pagerank": 0.1, "sssp": 0.2,
                                 "kmeans": 0.3})
        report = compare(cur, base)
        assert report["config_match"] is False
        assert report["mode"] == "normalized"
        assert report["ok"] is True
        assert report["geomean_ratio"] == pytest.approx(0.01)
        for row in report["workloads"].values():
            assert row["normalized_ratio"] == pytest.approx(1.0)

    def test_single_workload_outlier_fails(self):
        base = _payload(False, 8, {"pagerank": 10.0, "sssp": 10.0,
                                   "kmeans": 10.0})
        cur = _payload(True, 8, {"pagerank": 1.0, "sssp": 1.0,
                                 "kmeans": 4.0})
        report = compare(cur, base)
        assert report["ok"] is False
        assert report["workloads"]["kmeans"]["verdict"] == "slower"
        assert report["workloads"]["pagerank"]["verdict"] == "ok"

    def test_no_simulated_identity_check_across_configs(self):
        # Smoke datasets legitimately produce different simulated metrics.
        base = _payload(False, 8, {"pagerank": 10.0},
                        simulated={"pagerank": 99.0})
        cur = _payload(True, 4, {"pagerank": 0.1},
                       simulated={"pagerank": 1.0})
        assert compare(cur, base)["ok"] is True

    def test_nodes_mismatch_alone_forces_normalized(self):
        base = _payload(False, 8, {"pagerank": 1.0})
        cur = _payload(False, 4, {"pagerank": 1.0})
        assert compare(cur, base)["mode"] == "normalized"


class TestLoadBaseline:
    def test_rejects_non_benchmark_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_loads_payload(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(_payload(False, 8, {"pagerank": 1.0})))
        assert "pagerank" in load_baseline(str(path))["workloads"]


class TestMain:
    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        rc = main(["--baseline", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_end_to_end_self_baseline_passes(self, tmp_path, capsys,
                                             monkeypatch):
        # Record a smoke baseline, then gate a fresh identical-config run
        # against it: simulated metrics must match exactly and walls must
        # be within tolerance of themselves.
        from repro.bench.wallclock import run_fusion_benchmark

        payload = run_fusion_benchmark(smoke=True, nodes=4)
        baseline = tmp_path / "BENCH_SELF.json"
        baseline.write_text(json.dumps(payload))
        report_path = tmp_path / "report.json"
        rc = main(["--baseline", str(baseline), "--smoke", "--nodes", "4",
                   "--tolerance", "5.0", "--out", str(report_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS (absolute gate" in out
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["config_match"] is True
        for row in report["workloads"].values():
            assert row["verdict"] == "ok"

    def test_defaults(self):
        assert DEFAULT_TOLERANCE == 0.25
        assert DEFAULT_REL_TOLERANCE == 0.50
