"""The sanitizer corpus: five seeded bugs, five distinct REX2xx catches.

Each corpus case runs a deliberately-broken query end-to-end and asserts
the runtime sanitizer (or, for the schedule race, the determinism
checker) reports the specific code that names its bug class — and that
across the corpus the five cases exercise five *different* checks.
"""

import pytest

from sanitizer_corpus import CASES

_REPORTS = {}


def _report_for(case):
    if case.name not in _REPORTS:
        _REPORTS[case.name] = case.run()
    return _REPORTS[case.name]


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_case_caught_by_expected_check(case):
    report = _report_for(case)
    assert case.code in report.codes(), (
        f"{case.name}: expected {case.code}, sanitizer reported "
        f"{report.codes() or 'nothing'}")


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_case_reported_as_error(case):
    report = _report_for(case)
    assert report.has_errors(), (
        f"{case.name}: {case.code} must surface at error severity")


def test_corpus_covers_distinct_checks():
    codes = [case.code for case in CASES]
    assert len(set(codes)) == len(codes) == 5
    assert set(codes) == {"REX200", "REX201", "REX203", "REX204", "REX205"}
