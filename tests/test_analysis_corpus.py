"""The analyzer must detect every seeded-bad plan with its expected code,
and stay quiet (no error-level findings) on the good plans."""

import pytest

from repro.analysis import analyze

from tests.analysis_corpus import (
    BAD_CASES,
    GOOD_CASES,
    LINEAGE_CASES,
    POLARITY_CASES,
)


@pytest.mark.parametrize("case", BAD_CASES, ids=lambda c: c.name)
def test_bad_case_detected(case):
    report = analyze(case.plan())
    found = set(report.codes())
    missing = case.expected - found
    assert not missing, (
        f"{case.name}: expected codes {sorted(case.expected)}, analyzer "
        f"reported {sorted(found)}:\n{report.format()}")


@pytest.mark.parametrize("case", BAD_CASES, ids=lambda c: c.name)
def test_bad_case_diagnostics_carry_location_and_hint(case):
    report = analyze(case.plan())
    for code in case.expected:
        for diag in report.by_code(code):
            assert diag.location, f"{case.name}: {code} without a location"
            assert diag.message


@pytest.mark.parametrize("case", GOOD_CASES, ids=lambda c: c.name)
def test_good_case_has_no_errors(case):
    report = analyze(case.plan())
    assert not report.has_errors(), (
        f"{case.name} should be clean but got:\n{report.format()}")


@pytest.mark.parametrize("case", POLARITY_CASES, ids=lambda c: c.name)
def test_polarity_verdict_reported(case):
    report = analyze(case.plan())
    found = set(report.codes())
    missing = case.expected - found
    assert not missing, (
        f"{case.name}: expected codes {sorted(case.expected)}, analyzer "
        f"reported {sorted(found)}:\n{report.format()}")


@pytest.mark.parametrize("case", POLARITY_CASES, ids=lambda c: c.name)
def test_polarity_diagnostics_carry_location(case):
    report = analyze(case.plan())
    for code in case.expected:
        diags = report.by_code(code)
        assert diags, f"{case.name}: no {code} diagnostics"
        for diag in diags:
            assert diag.location, f"{case.name}: {code} without a location"
            assert diag.message


def test_every_polarity_code_has_a_case():
    """Each REX30x verdict is anchored by at least one corpus case.
    REX307 is excluded: it is emitted only at runtime by the sanitizer
    when an observed delta contradicts a static proof."""
    covered = set()
    for case in POLARITY_CASES:
        covered |= case.expected
    from repro.analysis.diagnostics import CODES
    polarity_codes = {c for c in CODES
                      if c.startswith("REX3")} - {"REX307"}
    assert polarity_codes <= covered, polarity_codes - covered


@pytest.mark.parametrize("case", LINEAGE_CASES, ids=lambda c: c.name)
def test_lineage_verdict_reported(case):
    report = analyze(case.plan())
    found = set(report.codes())
    missing = case.expected - found
    assert not missing, (
        f"{case.name}: expected codes {sorted(case.expected)}, analyzer "
        f"reported {sorted(found)}:\n{report.format()}")


@pytest.mark.parametrize("case", LINEAGE_CASES, ids=lambda c: c.name)
def test_lineage_diagnostics_carry_location(case):
    report = analyze(case.plan())
    for code in case.expected:
        diags = report.by_code(code)
        assert diags, f"{case.name}: no {code} diagnostics"
        for diag in diags:
            assert diag.location, f"{case.name}: {code} without a location"
            assert diag.message


def test_every_lineage_code_has_a_case():
    """Each REX40x verdict is anchored by at least one corpus case."""
    covered = set()
    for case in LINEAGE_CASES:
        covered |= case.expected
    from repro.analysis.diagnostics import CODES
    lineage_codes = {c for c in CODES if c.startswith("REX4")}
    assert lineage_codes <= covered, lineage_codes - covered


def test_every_plan_code_has_a_bad_case():
    """Each published REX0xx plan code is anchored by at least one case."""
    covered = set()
    for case in BAD_CASES:
        covered |= case.expected
    from repro.analysis.diagnostics import CODES
    plan_codes = {c for c in CODES if c.startswith("REX0")}
    assert plan_codes <= covered, plan_codes - covered
