"""Tests for partitioning-aware lowering and logical exchange placement."""

import pytest

from repro.cluster import Cluster
from repro.operators.expressions import BinaryOp, ColumnRef, Literal
from repro.optimizer import add_exchanges, lower
from repro.optimizer.logical import (
    LFilter,
    LGroupBy,
    LJoin,
    LProject,
    LRehash,
    LScan,
)
from repro.optimizer.logical import LAggCall
from repro.common.schema import Field, SQLType
from repro.runtime.plan import PGroupBy, PJoin, PRehash, PScan
from repro.udf import Sum


def make_catalog():
    cluster = Cluster(3)
    cluster.create_table("r", ["k:Integer", "v:Integer"],
                         [(i, i) for i in range(30)], "k")
    cluster.create_table("u", ["k:Integer", "w:Integer"],
                         [(i % 5, i) for i in range(30)], None)
    return cluster


def scan(cluster, name):
    table = cluster.catalog.get(name)
    return LScan(name, table.schema, table.partition_key)


def node_types(pnode):
    out = []

    def walk(n):
        out.append(type(n).__name__)
        for c in n.children:
            walk(c)

    walk(pnode)
    return out


class TestExchangePlacement:
    def test_colocated_join_needs_no_rehash(self):
        cluster = make_catalog()
        join = LJoin(scan(cluster, "r"), scan(cluster, "r"), ("r.k", "r.k"))
        placed = add_exchanges(join)
        assert not any(isinstance(n, LRehash) for n in placed.walk())

    def test_unpartitioned_side_gets_rehash(self):
        cluster = make_catalog()
        join = LJoin(scan(cluster, "r"), scan(cluster, "u"), ("r.k", "u.k"))
        placed = add_exchanges(join)
        rehashes = [n for n in placed.walk() if isinstance(n, LRehash)]
        assert len(rehashes) == 1
        # It wraps the round-robin side.
        assert isinstance(rehashes[0].children[0], LScan)
        assert rehashes[0].children[0].table == "u"

    def test_groupby_on_partition_key_local(self):
        cluster = make_catalog()
        gb = LGroupBy(scan(cluster, "r"), ["k"],
                      [LAggCall("sum", Sum, [ColumnRef("v")],
                                [Field("s", SQLType.ANY)])])
        placed = add_exchanges(gb)
        assert not any(isinstance(n, LRehash) for n in placed.walk())

    def test_groupby_on_other_column_rehashes(self):
        cluster = make_catalog()
        gb = LGroupBy(scan(cluster, "r"), ["v"],
                      [LAggCall("sum", Sum, [ColumnRef("k")],
                                [Field("s", SQLType.ANY)])])
        placed = add_exchanges(gb)
        assert any(isinstance(n, LRehash) for n in placed.walk())

    def test_projection_preserves_partitioning_when_key_passes(self):
        cluster = make_catalog()
        project = LProject(scan(cluster, "r"),
                           [(ColumnRef("k"), Field("k", SQLType.INTEGER)),
                            (BinaryOp("+", ColumnRef("v"), Literal(1)),
                             Field("v1", SQLType.INTEGER))])
        gb = LGroupBy(project, ["k"],
                      [LAggCall("sum", Sum, [ColumnRef("v1")],
                                [Field("s", SQLType.ANY)])])
        placed = add_exchanges(gb)
        assert not any(isinstance(n, LRehash) for n in placed.walk())

    def test_projection_dropping_key_loses_partitioning(self):
        cluster = make_catalog()
        project = LProject(scan(cluster, "r"),
                           [(ColumnRef("v"), Field("v", SQLType.INTEGER))])
        gb = LGroupBy(project, ["v"],
                      [LAggCall("sum", Sum, [ColumnRef("v")],
                                [Field("s", SQLType.ANY)])])
        placed = add_exchanges(gb)
        assert any(isinstance(n, LRehash) for n in placed.walk())


class TestLowering:
    def test_lowered_shapes(self):
        cluster = make_catalog()
        join = LJoin(scan(cluster, "r"), scan(cluster, "u"), ("r.k", "u.k"))
        plan = lower(add_exchanges(join))
        kinds = node_types(plan.root)
        assert "PJoin" in kinds and "PRehash" in kinds and "PScan" in kinds

    def test_filter_udf_calls_counted(self):
        from repro.operators.expressions import FuncCall
        from repro.udf import udf

        @udf()
        def p(v):
            return v > 1

        cluster = make_catalog()
        filt = LFilter(scan(cluster, "r"), FuncCall(p, [ColumnRef("v")]))
        plan = lower(filt)
        pfilter = plan.root.children[0]
        assert pfilter.udf_calls == 1

    def test_lowering_is_safety_net(self):
        """Lowering without prior add_exchanges still inserts exchanges."""
        cluster = make_catalog()
        gb = LGroupBy(scan(cluster, "u"), ["k"],
                      [LAggCall("sum", Sum, [ColumnRef("w")],
                                [Field("s", SQLType.ANY)])])
        plan = lower(gb)  # no add_exchanges
        assert "PRehash" in node_types(plan.root)
