"""End-to-end RQL: the paper's listings through parse/compile/optimize/run."""

import pytest

from repro.algorithms import (
    MonotoneMinDist,
    PRAgg,
    SPAgg,
    kmeans_reference,
    pagerank_reference,
    sssp_reference,
)
from repro.algorithms.kmeans import CentroidAvg, KMAgg
from repro.cluster import Cluster
from repro.common.errors import TypeCheckError
from repro.datasets import dbpedia_like, geo_points, lineitem, sample_centroids
from repro.rql import RQLSession
from repro.udf import udf

EDGES = dbpedia_like(300, avg_out_degree=5, seed=51)


def graph_session(n=3):
    cluster = Cluster(n)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         EDGES, "srcId")
    return RQLSession(cluster)


class TestSimpleQueries:
    def make_lineitem_session(self, n_rows=400):
        cluster = Cluster(3)
        cluster.create_table(
            "lineitem",
            ["orderkey:Integer", "linenumber:Integer", "quantity:Integer",
             "extendedprice:Double", "discount:Double", "tax:Double"],
            lineitem(n_rows), None)
        return RQLSession(cluster), lineitem(n_rows)

    def test_figure4_aggregation_query(self):
        session, rows = self.make_lineitem_session()
        result = session.execute(
            "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1")
        kept = [r for r in rows if r[1] > 1]
        assert len(result.rows) == 1
        total, count = result.rows[0]
        assert count == len(kept)
        assert total == pytest.approx(sum(r[5] for r in kept))

    def test_projection_and_arithmetic(self):
        session, rows = self.make_lineitem_session(50)
        result = session.execute(
            "SELECT orderkey, quantity * 2 AS dbl FROM lineitem "
            "WHERE quantity > 25")
        expected = sorted((r[0], r[2] * 2) for r in rows if r[2] > 25)
        assert sorted(result.rows) == expected

    def test_group_by_query(self):
        session, rows = self.make_lineitem_session(300)
        result = session.execute(
            "SELECT linenumber, count(*), avg(tax) FROM lineitem "
            "GROUP BY linenumber")
        by_line = {}
        for r in rows:
            by_line.setdefault(r[1], []).append(r[5])
        expected = {ln: (len(ts), sum(ts) / len(ts))
                    for ln, ts in by_line.items()}
        assert len(result.rows) == len(expected)
        for ln, count, avg_tax in result.rows:
            assert count == expected[ln][0]
            assert avg_tax == pytest.approx(expected[ln][1])

    def test_scalar_udf_in_query(self):
        session, rows = self.make_lineitem_session(50)

        @udf(in_types=["Double"], out_types=["Double"])
        def taxed(price):
            return price * 1.05

        session.register(taxed)
        result = session.execute(
            "SELECT orderkey, taxed(extendedprice) FROM lineitem")
        got = sorted(result.rows)
        expected = sorted((r[0], r[3] * 1.05) for r in rows)
        assert [g[0] for g in got] == [e[0] for e in expected]
        assert [g[1] for g in got] == pytest.approx([e[1] for e in expected])

    def test_join_query(self):
        cluster = Cluster(3)
        cluster.create_table("r", ["a:Integer", "x:Integer"],
                             [(i, i * 2) for i in range(20)], "a")
        cluster.create_table("s", ["b:Integer", "y:Integer"],
                             [(i % 5, i) for i in range(15)], "b")
        session = RQLSession(cluster)
        result = session.execute(
            "SELECT a, x, y FROM r, s WHERE r.a = s.b")
        expected = sorted((i % 5, (i % 5) * 2, i) for i in range(15))
        assert sorted(result.rows) == expected

    def test_unknown_table_rejected(self):
        session = graph_session()
        with pytest.raises(TypeCheckError):
            session.execute("SELECT x FROM missing")

    def test_unknown_column_rejected(self):
        session = graph_session()
        with pytest.raises(TypeCheckError):
            session.execute("SELECT nope FROM graph")


PAGERANK_RQL = """
    WITH PR (srcId, pr) AS                 -- Base case initializes
    ( SELECT srcId, 1.0 AS pr FROM graph   -- PageRank to 1
    ) UNION UNTIL FIXPOINT BY srcId (      -- Recursive case produces deltas
      SELECT nbr, 0.15 + 0.85 * sum(prDiff)
      FROM ( SELECT PRAgg(srcId, pr).{nbr, prDiff}
             FROM graph, PR                -- deltas from prev. iteration
             WHERE graph.srcId = PR.srcId GROUP BY srcId)
      GROUP BY nbr)
"""

SSSP_RQL = """
    WITH SP (srcId, parent, dist) AS (
      SELECT v, parent, dist FROM start
    ) UNION ALL UNTIL FIXPOINT BY srcId (
      SELECT nbr, ArgMin(parent, distOut).{id, dist}
      FROM ( SELECT SPAgg(nbrId, dist).{nbr, parent, distOut}
             FROM graph, SP WHERE graph.srcId = SP.srcId
             GROUP BY srcId) GROUP BY nbr)
"""

KMEANS_RQL = """
    WITH KM (cid, x, y) AS (
      SELECT cid, x, y FROM centroids0
    ) UNION ALL UNTIL FIXPOINT BY cid (
      SELECT cid, CentroidAvg(xDiff, yDiff).{x, y}
      FROM ( SELECT cid, KMAgg(cid, cx, cy).{cid, xDiff, yDiff}
             FROM points, KM GROUP BY cid ) GROUP BY cid)
"""


class TestPageRankRQL:
    def test_listing1_matches_reference(self):
        session = graph_session()
        session.register(PRAgg(tol=0.0))
        result = session.execute(PAGERANK_RQL)
        scores = dict(result.rows)
        expected = pagerank_reference(EDGES)
        assert set(scores) == set(expected)
        for v in expected:
            assert scores[v] == pytest.approx(expected[v], rel=1e-6)

    def test_convergence_metrics(self):
        session = graph_session()
        session.register(PRAgg(tol=0.01))
        result = session.execute(PAGERANK_RQL)
        assert result.metrics.delta_series()[-1] == 0
        assert result.metrics.num_iterations > 3

    def test_explain_shows_figure1_structure(self):
        session = graph_session()
        session.register(PRAgg(tol=0.01))
        text = session.explain(PAGERANK_RQL)
        assert "Fixpoint(PR BY srcId)" in text
        assert "Join[PRAgg]" in text
        assert "FixpointReceiver(PR)" in text
        assert "Scan(graph)" in text
        assert "GroupBy" in text


class TestSSSPRQL:
    def test_listing2_matches_bfs(self):
        session = graph_session()
        session.cluster.create_table(
            "start", ["v:Integer", "parent:Integer", "dist:Double"],
            [(0, -1, 0.0)], "v")
        session.register(SPAgg())
        session.register(MonotoneMinDist)
        result = session.execute(SSSP_RQL,
                                 fixpoint_handler="MonotoneMinDist")
        dists = {r[0]: r[2] for r in result.rows}
        expected = {v: float(d) for v, d in sssp_reference(EDGES, 0).items()}
        assert dists == expected

    def test_parent_pointers_valid(self):
        session = graph_session()
        session.cluster.create_table(
            "start", ["v:Integer", "parent:Integer", "dist:Double"],
            [(0, -1, 0.0)], "v")
        session.register(SPAgg())
        session.register(MonotoneMinDist)
        result = session.execute(SSSP_RQL,
                                 fixpoint_handler="MonotoneMinDist")
        dists = {r[0]: r[2] for r in result.rows}
        for v, parent, d in result.rows:
            if v != 0:
                assert dists[parent] == d - 1


class TestKMeansRQL:
    def test_listing3_matches_lloyd(self):
        points = geo_points(200, n_clusters=3, seed=55, spread=0.7)
        centroids = sample_centroids(points, 3, seed=56)
        cluster = Cluster(3)
        cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                             points, None)
        cluster.create_table("centroids0",
                             ["cid:Integer", "x:Double", "y:Double"],
                             centroids, "cid")
        session = RQLSession(cluster)
        session.register(KMAgg)
        session.register(CentroidAvg, name="CentroidAvg")
        result = session.execute(KMEANS_RQL)
        got = {r[0]: (r[1], r[2]) for r in result.rows}
        expected, _, _ = kmeans_reference(points, centroids)
        for cid, (x, y) in expected.items():
            if got.get(cid, (None, None)) != (None, None):
                assert got[cid][0] == pytest.approx(x, abs=1e-6)
                assert got[cid][1] == pytest.approx(y, abs=1e-6)
