"""Unit tests for filter/project/applyFunction delta propagation."""

import pytest

from repro.common import DeltaOp, delete, insert, replace, update
from repro.common.punctuation import Punctuation
from repro.operators import ApplyFunction, Filter, Project
from repro.udf import udf

from helpers import Capture, wire


class TestFilter:
    def make(self, predicate):
        sink = Capture()
        op = Filter(predicate)
        wire(op, sink)
        return op, sink

    def test_passes_matching_insert(self):
        op, sink = self.make(lambda r: r[0] > 1)
        op.receive(insert((2,)))
        op.receive(insert((0,)))
        assert sink.rows() == [(2,)]

    def test_annotation_preserved(self):
        op, sink = self.make(lambda r: True)
        op.receive(delete((1,)))
        op.receive(update((2,), payload=9))
        assert [d.op for d in sink.deltas] == [DeltaOp.DELETE, DeltaOp.UPDATE]
        assert sink.deltas[1].payload == 9

    def test_replace_both_pass(self):
        op, sink = self.make(lambda r: r[0] > 0)
        op.receive(replace((1,), (2,)))
        assert sink.deltas[0].op is DeltaOp.REPLACE

    def test_replace_entering_predicate_becomes_insert(self):
        op, sink = self.make(lambda r: r[0] > 0)
        op.receive(replace((-1,), (2,)))
        assert [d.op for d in sink.deltas] == [DeltaOp.INSERT]
        assert sink.rows() == [(2,)]

    def test_replace_leaving_predicate_becomes_delete(self):
        op, sink = self.make(lambda r: r[0] > 0)
        op.receive(replace((1,), (-2,)))
        assert [d.op for d in sink.deltas] == [DeltaOp.DELETE]
        assert sink.deltas[0].row == (1,)

    def test_replace_both_fail_dropped(self):
        op, sink = self.make(lambda r: r[0] > 0)
        op.receive(replace((-1,), (-2,)))
        assert sink.deltas == []

    def test_punctuation_forwarded(self):
        op, sink = self.make(lambda r: False)
        op.on_punctuation(Punctuation.end_of_stratum(0))
        assert sink.puncts == [Punctuation.end_of_stratum(0)]


class TestProject:
    def test_row_transform(self):
        sink = Capture()
        op = Project(lambda r: (r[0] * 2,))
        wire(op, sink)
        op.receive(insert((3, "x")))
        assert sink.rows() == [(6,)]

    def test_replace_transforms_both_images(self):
        sink = Capture()
        op = Project(lambda r: (r[0] + 1,))
        wire(op, sink)
        op.receive(replace((1,), (5,)))
        d = sink.deltas[0]
        assert d.op is DeltaOp.REPLACE and d.row == (6,) and d.old == (2,)

    def test_update_payload_preserved(self):
        sink = Capture()
        op = Project(lambda r: r)
        wire(op, sink)
        op.receive(update((1,), payload="E"))
        assert sink.deltas[0].payload == "E"


class TestApplyFunction:
    def test_scalar_extend(self):
        @udf()
        def double(x):
            return 2 * x

        sink = Capture()
        op = ApplyFunction(double, arg_fn=lambda r: (r[0],), mode="extend")
        wire(op, sink)
        op.receive(insert((4,)))
        assert sink.rows() == [(4, 8)]

    def test_scalar_replace_mode(self):
        @udf()
        def square(x):
            return x * x

        sink = Capture()
        op = ApplyFunction(square, arg_fn=lambda r: (r[0],), mode="replace")
        wire(op, sink)
        op.receive(insert((3,)))
        assert sink.rows() == [(9,)]

    def test_table_valued_fanout(self):
        @udf(table_valued=True)
        def explode(n):
            return [(i,) for i in range(n)]

        sink = Capture()
        op = ApplyFunction(explode, arg_fn=lambda r: (r[0],), mode="replace")
        wire(op, sink)
        op.receive(insert((3,)))
        assert sink.rows() == [(0,), (1,), (2,)]

    def test_table_valued_empty_output(self):
        @udf(table_valued=True)
        def nothing(n):
            return []

        sink = Capture()
        op = ApplyFunction(nothing, arg_fn=lambda r: (r[0],), mode="replace")
        wire(op, sink)
        op.receive(insert((3,)))
        assert sink.deltas == []

    def test_replace_with_mismatched_fanout_decomposes(self):
        @udf(table_valued=True)
        def explode(n):
            return [(i,) for i in range(n)]

        sink = Capture()
        op = ApplyFunction(explode, arg_fn=lambda r: (r[0],), mode="replace")
        wire(op, sink)
        op.receive(replace((1,), (2,)))
        ops = [d.op for d in sink.deltas]
        assert ops == [DeltaOp.DELETE, DeltaOp.INSERT, DeltaOp.INSERT]

    def test_delta_aware_udf_rewrites_annotations(self):
        def to_update(delta):
            return [update(delta.row, payload=0.5)]

        sink = Capture()
        op = ApplyFunction(to_update, arg_fn=lambda r: r, delta_aware=True)
        wire(op, sink)
        op.receive(insert((7,)))
        assert sink.deltas[0].op is DeltaOp.UPDATE
        assert sink.deltas[0].payload == 0.5

    def test_udf_cost_charged(self):
        @udf()
        def f(x):
            return x

        sink = Capture()
        op = ApplyFunction(f, arg_fn=lambda r: (r[0],))
        ctx = wire(op, sink)
        before = ctx.worker.stratum_usage.cpu
        op.receive(insert((1,)))
        assert ctx.worker.stratum_usage.cpu > before
