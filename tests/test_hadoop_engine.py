"""Unit tests for the MapReduce engine's cost accounting internals."""

import pytest

from repro.cluster import Cluster, CostModel
from repro.common.errors import ExecutionError
from repro.hadoop import DFSDataset, HadoopEngine, MapReduceJob
from repro.hadoop.jobs import Mapper, Reducer


class EmitMapper(Mapper):
    def map(self, key, value):
        yield (key % 3, value)


class SumReducer(Reducer):
    def reduce(self, key, values):
        yield (key, sum(values))


def make(n_nodes=4, haloop=False, **cost_overrides):
    cm = CostModel().scaled(**cost_overrides) if cost_overrides else None
    cluster = Cluster(n_nodes, cost_model=cm)
    return cluster, HadoopEngine(cluster, haloop=haloop)


def dataset(cluster, n=60):
    nodes = [w.id for w in cluster.alive_workers()]
    return DFSDataset.from_records("in", [(i, 1) for i in range(n)], nodes)


def job():
    return MapReduceJob("j", [EmitMapper()], SumReducer())


class TestJobExecution:
    def test_results_correct(self):
        cluster, engine = make()
        out, _, _ = engine.run_job(job(), [dataset(cluster)])
        assert out.as_dict() == {0: 20, 1: 20, 2: 20}

    def test_mapper_input_count_mismatch_rejected(self):
        cluster, engine = make()
        with pytest.raises(ExecutionError):
            engine.run_job(job(), [dataset(cluster), dataset(cluster)])

    def test_wall_time_includes_startup(self):
        cluster, engine = make()
        _, seconds, _ = engine.run_job(job(), [dataset(cluster)])
        cm = cluster.cost
        assert seconds > cm.hadoop_job_startup + 2 * cm.hadoop_task_overhead

    def test_free_inputs_charge_nothing(self):
        c1, e1 = make()
        _, charged, _ = e1.run_job(job(), [dataset(c1)])
        c2, e2 = make()
        _, free, _ = e2.run_job(job(), [dataset(c2)], free_inputs={0})
        # The free run still pays startup + output write, but less work.
        assert free < charged

    def test_free_inputs_still_produce_output(self):
        cluster, engine = make()
        out, _, _ = engine.run_job(job(), [dataset(cluster)],
                                   free_inputs={0})
        assert out.as_dict() == {0: 20, 1: 20, 2: 20}

    def test_combiner_reduces_shuffle_bytes(self):
        class Combine(SumReducer):
            pass

        c1, e1 = make()
        plain = MapReduceJob("p", [EmitMapper()], SumReducer())
        _, _, bytes_plain = e1.run_job(plain, [dataset(c1, 200)])
        c2, e2 = make()
        combined = MapReduceJob("c", [EmitMapper()], SumReducer(),
                                combiner=Combine())
        _, _, bytes_combined = e2.run_job(combined, [dataset(c2, 200)])
        assert bytes_combined < bytes_plain

    def test_broadcast_bytes_charged(self):
        cluster, engine = make()
        before = [w.stratum_usage.net_in for w in cluster.alive_workers()]
        engine.run_job(job(), [dataset(cluster)],
                       broadcast_bytes=1_000_000)
        # net usage was rolled into totals at job end; check totals.
        for w in cluster.alive_workers():
            assert w.total_usage.net_in > 0

    def test_dfs_replication_scales_output_cost(self):
        c1, e1 = make(dfs_replication=1)
        _, cheap, _ = e1.run_job(job(), [dataset(c1, 300)])
        c2, e2 = make(dfs_replication=5)
        _, pricey, _ = e2.run_job(job(), [dataset(c2, 300)])
        assert pricey > cheap

    def test_record_cost_scales_runtime(self):
        c1, e1 = make(hadoop_record_cost=1e-6)
        _, cheap, _ = e1.run_job(job(), [dataset(c1, 500)])
        c2, e2 = make(hadoop_record_cost=100e-6)
        _, pricey, _ = e2.run_job(job(), [dataset(c2, 500)])
        assert pricey > cheap

    def test_jobs_counted(self):
        cluster, engine = make()
        engine.run_job(job(), [dataset(cluster)])
        engine.run_job(job(), [dataset(cluster)])
        assert engine.jobs_run == 2

    def test_dead_nodes_excluded(self):
        cluster, engine = make(4)
        ds = dataset(cluster)
        cluster.fail_node(3)
        # Records on the dead node are lost to the job (its partition is
        # not read); the engine runs on survivors only.
        out, _, _ = engine.run_job(job(), [ds])
        lost = len(ds.partition(3))
        assert sum(out.as_dict().values()) == 60 - lost
