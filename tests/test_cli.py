"""Tests for the CSV-backed command-line interface."""

import pytest

from repro.cli import _parse_value, load_csv, main
from repro.common.errors import ReproError


@pytest.fixture
def edges_csv(tmp_path):
    path = tmp_path / "edges.csv"
    path.write_text("srcId:Integer,destId:Integer\n0,1\n0,2\n1,2\n2,0\n")
    return str(path)


@pytest.fixture
def people_csv(tmp_path):
    path = tmp_path / "people.csv"
    path.write_text("id,name,score\n1,ann,2.5\n2,bob,3.5\n")
    return str(path)


class TestCsvLoading:
    def test_explicit_types(self, edges_csv):
        schema, rows = load_csv(edges_csv)
        assert schema == ["srcId:Integer", "destId:Integer"]
        assert rows[0] == (0, 1)

    def test_inferred_types(self, people_csv):
        schema, rows = load_csv(people_csv)
        assert schema == ["id:Integer", "name:Varchar", "score:Double"]
        assert rows[1] == (2, "bob", 3.5)

    def test_empty_cell_is_null(self):
        assert _parse_value("") is None

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ReproError):
            load_csv(str(empty))


class TestCliExecution:
    def test_simple_query(self, edges_csv, capsys):
        rc = main(["--table", f"graph={edges_csv}", "--key", "graph=srcId",
                   "--nodes", "2",
                   "SELECT srcId, count(*) FROM graph GROUP BY srcId"])
        assert rc == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["0\t2", "1\t1", "2\t1"]

    def test_metrics_flag(self, edges_csv, capsys):
        rc = main(["--table", f"graph={edges_csv}", "--metrics",
                   "SELECT count(*) FROM graph"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "iterations" in err and "simulated" in err

    def test_explain_flag(self, edges_csv, capsys):
        rc = main(["--table", f"graph={edges_csv}", "--explain",
                   "SELECT srcId FROM graph WHERE destId > 0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Scan(graph)" in out and "Filter" in out

    def test_limit(self, edges_csv, capsys):
        rc = main(["--table", f"graph={edges_csv}", "--limit", "2",
                   "SELECT srcId, destId FROM graph"])
        assert rc == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 2
        assert "more rows" in captured.err

    def test_query_from_file(self, edges_csv, tmp_path, capsys):
        qfile = tmp_path / "q.rql"
        qfile.write_text("SELECT count(*) FROM graph")
        rc = main(["--table", f"graph={edges_csv}", f"@{qfile}"])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_bad_table_spec(self, capsys):
        assert main(["--table", "oops", "SELECT 1 FROM t"]) == 2

    def test_query_error_reported(self, edges_csv, capsys):
        rc = main(["--table", f"graph={edges_csv}",
                   "SELECT nope FROM graph"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestObservabilityFlags:
    QUERY = "SELECT srcId, count(*) FROM graph GROUP BY srcId"

    def test_trace_writes_valid_jsonl(self, edges_csv, tmp_path, capsys):
        from repro.obs import validate_jsonl

        trace = tmp_path / "run.trace.jsonl"
        rc = main(["--table", f"graph={edges_csv}", "--key", "graph=srcId",
                   "--trace", str(trace), self.QUERY])
        assert rc == 0
        lines = trace.read_text().splitlines()
        assert validate_jsonl(lines) == len(lines) > 0

    def test_trace_chrome_writes_loadable_json(self, edges_csv, tmp_path,
                                               capsys):
        import json as _json

        chrome = tmp_path / "run.chrome.json"
        rc = main(["--table", f"graph={edges_csv}", "--key", "graph=srcId",
                   "--trace-chrome", str(chrome), self.QUERY])
        assert rc == 0
        doc = _json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert any(r["ph"] == "M" for r in doc["traceEvents"])

    def test_analyze_prints_report_to_stderr(self, edges_csv, capsys):
        rc = main(["--table", f"graph={edges_csv}", "--key", "graph=srcId",
                   "--analyze", self.QUERY])
        assert rc == 0
        captured = capsys.readouterr()
        assert "EXPLAIN ANALYZE" in captured.err
        assert "operator attribution" in captured.err
        # query results still land on stdout, untouched
        assert sorted(captured.out.strip().splitlines()) == [
            "0\t2", "1\t1", "2\t1"]


class TestAnalyzeAndLintFormats:
    QUERY = "SELECT srcId, count(*) FROM graph GROUP BY srcId"

    def _analyze(self, edges_csv, capsys, fmt):
        import json as _json

        rc = main(["analyze", "--table", f"graph={edges_csv}",
                   "--key", "graph=srcId", "--format", fmt, self.QUERY])
        assert rc == 0
        return _json.loads(capsys.readouterr().out)

    def test_analyze_json_carries_properties(self, edges_csv, capsys):
        payload = self._analyze(edges_csv, capsys, "json")
        props = payload["properties"]
        assert props, "json payload must embed inferred properties"
        for row in props:
            assert {"path", "label", "polarity", "exact"} <= set(row)
        polarities = {row["polarity"] for row in props}
        assert "insert-only" in polarities

    def test_analyze_json_carries_lineage_and_rewrites(self, edges_csv,
                                                       capsys):
        payload = self._analyze(edges_csv, capsys, "json")
        lineage = payload["lineage"]
        assert lineage, "json payload must embed the column lineage"
        for row in lineage:
            assert {"path", "label", "live", "live_exact"} <= set(row)
        scan = next(row for row in lineage if row["label"] == "Scan")
        assert scan["out_arity"] == 2, (
            "the catalog's table width must reach the lineage report")
        assert "rewrites" in payload, (
            "json payload must list rewrite decisions (possibly empty)")
        for dec in payload["rewrites"]:
            assert {"path", "kind", "applied", "reason"} <= set(dec)

    def test_analyze_sarif_shape(self, edges_csv, capsys):
        doc = self._analyze(edges_csv, capsys, "sarif")
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        rule_ids = {r["id"] for r in driver["rules"]}
        # the REX40x lineage rules ship with full SARIF rule metadata
        lineage_rules = [r for r in driver["rules"]
                         if r["id"].startswith("REX4")]
        assert {r["id"] for r in lineage_rules} == {
            f"REX40{i}" for i in range(8)}
        for rule in lineage_rules:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "note", "warning", "error")
        assert run["results"], "graph group-by yields polarity verdicts"
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            for loc in result.get("locations", []):
                assert "physicalLocation" in loc \
                    or loc["logicalLocations"][0]["fullyQualifiedName"]
        # the insert-only scan feeding the group-by is a REX300 proof
        assert any(r["ruleId"].startswith("REX3") for r in run["results"])

    def test_lint_sarif_shape(self, tmp_path, capsys):
        import json as _json

        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\n\ndef stamp():\n"
                       "    return time.time()\n")
        rc = main(["lint", "--format", "sarif", str(bad)])
        assert rc == 1
        doc = _json.loads(capsys.readouterr().out)
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        result = next(r for r in run["results"] if r["ruleId"] == "REX102")
        region = result["locations"][0]["physicalLocation"]
        assert region["artifactLocation"]["uri"] == str(bad)
        assert region["region"]["startLine"] >= 1

    def test_lint_sarif_clean_run_is_valid(self, tmp_path, capsys):
        import json as _json

        ok = tmp_path / "ok.py"
        ok.write_text("x = 1\n")
        rc = main(["lint", "--format", "sarif", str(ok)])
        assert rc == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []
