"""Analyzer wiring: PlanValidationError, session gating, CLI subcommands,
diagnostics in explain/EXPLAIN ANALYZE output."""

import json

import pytest

from repro.analysis import analyze
from repro.analysis.diagnostics import make
from repro.cli import main
from repro.cluster import Cluster
from repro.common.errors import (
    PlanError,
    PlanValidationError,
    ReproError,
)
from repro.datasets import lineitem
from repro.obs import ObsContext, explain_analyze
from repro.rql import RQLSession
from repro.runtime.plan import PCollect, PFeedback, PhysicalPlan

from tests.analysis_corpus import missing_rehash


class TestPlanValidationError:
    def test_subclasses_plan_error(self):
        assert issubclass(PlanValidationError, PlanError)
        assert issubclass(PlanValidationError, ReproError)

    def test_carries_diagnostics_in_message(self):
        diag = make("REX005", "group-by input unpartitioned")
        err = PlanValidationError("plan rejected", diagnostics=[diag])
        assert err.diagnostics == [diag]
        assert "REX005" in str(err)

    def test_physical_plan_validation_raises_it(self):
        with pytest.raises(PlanValidationError) as info:
            PhysicalPlan(PCollect(children=(PFeedback(),)))
        assert any(d.code == "REX002" for d in info.value.diagnostics)


class TestSessionGating:
    def _session(self):
        cluster = Cluster(2)
        cluster.create_table(
            "lineitem",
            ["orderkey:Integer", "linenumber:Integer", "quantity:Integer",
             "extendedprice:Double", "discount:Double", "tax:Double"],
            lineitem(30), None)
        return RQLSession(cluster)

    def test_clean_query_executes_with_check(self):
        result = self._session().execute(
            "SELECT sum(tax) FROM lineitem", check=True)
        assert len(result.rows) == 1

    def test_analyze_reports_error_plan(self):
        report = analyze(missing_rehash())
        assert report.has_errors()
        assert "REX005" in report.codes()

    def test_explain_includes_diagnostics_section(self):
        text = self._session().explain("SELECT sum(tax) FROM lineitem",
                                       with_diagnostics=True)
        assert "-- diagnostics --" in text

    def test_explain_analyze_renders_diagnostics(self):
        obs = ObsContext()
        report = analyze(missing_rehash())
        text = explain_analyze(obs, diagnostics=report)
        assert "static analysis" in text and "REX005" in text

    def test_explain_analyze_omits_empty_diagnostics(self):
        from repro.analysis.diagnostics import DiagnosticReport
        obs = ObsContext()
        text = explain_analyze(obs, diagnostics=DiagnosticReport())
        assert "static analysis" not in text


class TestCLISubcommands:
    @pytest.fixture
    def edges_csv(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("srcId:Integer,destId:Integer\n1,2\n2,3\n1,3\n")
        return str(path)

    def test_analyze_clean_query(self, edges_csv, capsys):
        rc = main(["analyze", "--table", f"graph={edges_csv}",
                   "SELECT srcId, count(*) FROM graph GROUP BY srcId"])
        assert rc == 0
        out = capsys.readouterr().out
        # No errors or warnings; the abstract interpretation still
        # reports its insert-only proof as an info-level finding.
        assert "0 error(s), 0 warning(s)" in out
        assert "REX300" in out

    def test_analyze_json_format(self, edges_csv, capsys):
        rc = main(["analyze", "--table", f"graph={edges_csv}",
                   "--format", "json", "SELECT srcId FROM graph"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0

    def test_analyze_bad_query_exits_2(self, edges_csv, capsys):
        rc = main(["analyze", "--table", f"graph={edges_csv}",
                   "SELECT nope FROM graph"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_lint_text_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\n"
                       "def stamp():\n"
                       "    return time.time()\n")
        rc = main(["lint", str(bad)])
        assert rc == 1
        assert "REX102" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\n"
                       "def stamp():\n"
                       "    return time.time()\n")
        rc = main(["lint", "--format", "json", str(bad)])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"][0]["code"] == "REX102"

    def test_lint_clean_file_exits_0(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def add(a, b):\n    return a + b\n")
        rc = main(["lint", str(good)])
        assert rc == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_run_still_works_with_force(self, edges_csv, capsys):
        rc = main(["--table", f"graph={edges_csv}", "--force",
                   "SELECT srcId FROM graph"])
        assert rc == 0

    def test_explain_prints_diagnostics_section(self, edges_csv, capsys):
        rc = main(["--table", f"graph={edges_csv}", "--explain",
                   "SELECT srcId FROM graph WHERE destId > 0"])
        assert rc == 0
        assert "-- diagnostics --" in capsys.readouterr().out
