"""Unit tests for the RQL lexer and parser."""

import pytest

from repro.common.errors import ParseError
from repro.rql import ast
from repro.rql.lexer import TokenType, tokenize
from repro.rql.parser import parse


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select Select SELECT")
        assert all(t.value == "SELECT" for t in toks[:3])
        assert all(t.type is TokenType.KEYWORD for t in toks[:3])

    def test_identifiers_preserve_case(self):
        toks = tokenize("PRAgg prBucket")
        assert [t.value for t in toks[:2]] == ["PRAgg", "prBucket"]

    def test_numbers(self):
        toks = tokenize("42 0.85 1.0")
        assert toks[0].value == 42 and isinstance(toks[0].value, int)
        assert toks[1].value == 0.85
        assert toks[2].value == 1.0

    def test_strings_with_escape(self):
        toks = tokenize("'hello' 'it''s'")
        assert toks[0].value == "hello"
        assert toks[1].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_comments_skipped(self):
        toks = tokenize("SELECT -- comment here\n x")
        assert toks[1].value == "x"

    def test_two_char_symbols(self):
        toks = tokenize("<= >= <> !=")
        assert [t.value for t in toks[:4]] == ["<=", ">=", "<>", "!="]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_illegal_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")


class TestSelectParsing:
    def test_simple_aggregation_query(self):
        q = parse("SELECT sum(tax), count(*) FROM lineitem "
                  "WHERE linenumber > 1")
        assert isinstance(q, ast.Select)
        assert len(q.items) == 2
        assert q.items[0].expr == ast.Call("sum", (ast.Name(("tax",)),))
        assert q.items[1].expr.star
        assert q.from_[0].name == "lineitem"
        assert isinstance(q.where, ast.Binary)

    def test_aliases(self):
        q = parse("SELECT srcId, 1.0 AS pr FROM graph")
        assert q.items[1].alias == "pr"
        assert q.items[1].expr == ast.NumberLit(1.0)

    def test_implicit_alias(self):
        q = parse("SELECT a b FROM t u")
        assert q.items[0].alias == "b"
        assert q.from_[0].alias == "u"

    def test_group_by(self):
        q = parse("SELECT g, sum(v) FROM t GROUP BY g")
        assert q.group_by == (ast.Name(("g",)),)

    def test_nested_subquery(self):
        q = parse("SELECT x FROM (SELECT y FROM t) sub")
        assert q.from_[0].subquery is not None
        assert q.from_[0].alias == "sub"

    def test_qualified_names(self):
        q = parse("SELECT graph.srcId FROM graph, PR "
                  "WHERE graph.srcId = PR.srcId")
        assert q.items[0].expr == ast.Name(("graph", "srcId"))
        assert q.where.left == ast.Name(("graph", "srcId"))

    def test_field_expansion(self):
        q = parse("SELECT PRAgg(srcId, pr).{nbr, prDiff} FROM graph")
        item = q.items[0].expr
        assert isinstance(item, ast.FieldExpansion)
        assert item.call.func == "PRAgg"
        assert item.fields == ("nbr", "prDiff")

    def test_arithmetic_precedence(self):
        q = parse("SELECT 0.15 + 0.85 * sum(prDiff) FROM t")
        expr = q.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_boolean_precedence(self):
        q = parse("SELECT x FROM t WHERE a = 1 OR b = 2 AND NOT c = 3")
        assert q.where.op == "or"
        assert q.where.right.op == "and"

    def test_unary_minus(self):
        q = parse("SELECT -1, srcId FROM graph")
        assert q.items[0].expr == ast.Unary("-", ast.NumberLit(1))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT x FROM t bogus extra ,")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT x WHERE y = 1")


class TestWithRecursiveParsing:
    PAGERANK = """
        WITH PR (srcId, pr) AS            -- Base case initializes ...
        ( SELECT srcId, 1.0 AS pr FROM graph  -- PageRank to 1
        ) UNION UNTIL FIXPOINT BY srcId (     -- Recursive case ...
          SELECT nbr, 0.15 + 0.85 * sum(prDiff)
          FROM ( SELECT PRAgg(srcId, pr).{nbr, prDiff}
                 FROM graph, PR
                 WHERE graph.srcId = PR.srcId GROUP BY srcId)
          GROUP BY nbr)
    """

    def test_pagerank_listing(self):
        q = parse(self.PAGERANK)
        assert isinstance(q, ast.WithRecursive)
        assert q.name == "PR"
        assert q.columns == ("srcId", "pr")
        assert q.fixpoint_key == "srcId"
        assert not q.union_all
        assert isinstance(q.base, ast.Select)
        inner = q.recursive.from_[0].subquery
        assert inner is not None
        assert {t.name for t in inner.from_} == {"graph", "PR"}

    def test_union_all(self):
        q = parse("WITH SP (v, d) AS (SELECT v, 0 FROM s) "
                  "UNION ALL UNTIL FIXPOINT BY v "
                  "(SELECT v, d FROM SP)")
        assert q.union_all

    def test_columns_after_as_tolerated(self):
        """The paper's Listing 3 writes ``WITH KM AS (cid, x, y) AS (...)``
        -- we accept the column list on either side of AS."""
        q = parse("WITH KM AS (SELECT cid, x, y FROM c) "
                  "UNION ALL UNTIL FIXPOINT BY cid (SELECT cid, x, y FROM KM)")
        assert q.columns == ()

    def test_missing_fixpoint_rejected(self):
        with pytest.raises(ParseError):
            parse("WITH R (x) AS (SELECT x FROM t) UNION (SELECT x FROM R)")
