"""Unit tests for the Hadoop-in-REX wrapper UDFs/UDAs and message sizes."""

import pytest

from repro.common import delete, insert, replace, update
from repro.common.errors import UDFError
from repro.hadoop.jobs import (
    LineitemFilterMapper,
    PRApplyReducer,
    PRJoinReducer,
    SPOfferMinReducer,
    SumCountReducer,
)
from repro.hadoop.wrap import MapWrap, MapWrapJoinHandler, ReduceWrapAgg


class TestMapWrap:
    def test_maps_to_pairs(self):
        fn = MapWrap(LineitemFilterMapper())
        assert fn(None, (3, 0.05)) == [(1, (0.05, 1))]
        assert fn(None, (1, 0.05)) == []  # filtered out

    def test_table_valued(self):
        assert MapWrap(LineitemFilterMapper()).table_valued

    def test_entry_cost_includes_format(self):
        from repro.cluster import CostModel
        from repro.hadoop.wrap import _wrap_call_cost, _wrap_entry_cost

        cm = CostModel()
        assert _wrap_entry_cost(cm) == \
            _wrap_call_cost(cm) + cm.wrap_format_cost


class TestReduceWrapAgg:
    def make(self, reducer=SumCountReducer):
        return ReduceWrapAgg(reducer)

    def test_collect_and_reduce(self):
        agg = self.make()
        state = agg.init_state()
        for pair in [(0.1, 1), (0.2, 1)]:
            state = agg.agg_state(state, insert(pair), pair)
        total, count = agg.agg_result(state)
        assert total == pytest.approx(0.3)
        assert count == 2

    def test_empty_state_yields_null(self):
        agg = self.make()
        assert agg.agg_result(agg.init_state()) is None

    def test_delete_removes_value(self):
        agg = self.make()
        state = agg.init_state()
        state = agg.agg_state(state, insert((0.1, 1)), (0.1, 1))
        state = agg.agg_state(state, delete((0.1, 1)), (0.1, 1))
        assert agg.agg_result(state) is None

    def test_delete_absent_raises(self):
        agg = self.make()
        with pytest.raises(UDFError):
            agg.agg_state(agg.init_state(), delete((0.1, 1)), (0.1, 1))

    def test_replace_swaps_value(self):
        agg = self.make()
        state = agg.init_state()
        state = agg.agg_state(state, insert((0.1, 1)), (0.1, 1))
        state = agg.agg_state(state, replace((0.1, 1), (0.5, 1)),
                              (0.5, 1), (0.1, 1))
        total, count = agg.agg_result(state)
        assert total == pytest.approx(0.5)

    def test_update_deltas_rejected(self):
        agg = self.make()
        with pytest.raises(UDFError):
            agg.agg_state(agg.init_state(), update((1,), payload=1), None)

    def test_min_reducer(self):
        agg = ReduceWrapAgg(SPOfferMinReducer)
        state = agg.init_state()
        for d in (5.0, 2.0, 9.0):
            state = agg.agg_state(state, insert((d,)), d)
        assert agg.agg_result(state) == 2.0


class TestMapWrapJoinHandler:
    def test_reduce_side_join_logic(self):
        handler = MapWrapJoinHandler(PRJoinReducer())
        left = [(1, 10), (1, 11)]  # two out-edges of vertex 1
        right = []
        out = handler.update(left, right, insert((1, 2.0)), side=1)
        rows = sorted(d.row for d in out)
        assert rows == [(10, 1.0), (11, 1.0)]  # rank 2.0 split over 2 edges
        assert right == [(1, 2.0)]             # bucket refined in place

    def test_bucket_overwritten_on_next_delta(self):
        handler = MapWrapJoinHandler(PRJoinReducer())
        left = [(1, 10)]
        right = []
        handler.update(left, right, insert((1, 2.0)), side=1)
        handler.update(left, right, insert((1, 4.0)), side=1)
        assert right == [(1, 4.0)]

    def test_no_edges_no_output(self):
        handler = MapWrapJoinHandler(PRJoinReducer())
        assert handler.update([], [], insert((1, 2.0)), side=1) == []


class TestHadoopReducerUnits:
    def test_pr_apply_reducer_damping(self):
        out = list(PRApplyReducer().reduce(7, [0.5, 0.5]))
        assert out == [(7, 0.15 + 0.85 * 1.0)]

    def test_pr_join_reducer_accepts_edge_or_list_payloads(self):
        tagged = [("A", 10), ("A", [11, 12]), ("R", 3.0)]
        out = sorted(PRJoinReducer().reduce(1, tagged))
        assert out == [(10, 1.0), (11, 1.0), (12, 1.0)]

    def test_pr_join_reducer_without_rank_is_silent(self):
        assert list(PRJoinReducer().reduce(1, [("A", 10)])) == []
