"""End-to-end algorithm correctness against independent oracles."""

import pytest

from repro.algorithms import (
    kmeans_reference,
    make_start_table,
    pagerank_networkx,
    pagerank_reference,
    run_adsorption,
    run_kmeans,
    run_pagerank,
    run_sssp,
    sssp_reference,
)
from repro.cluster import Cluster
from repro.datasets import dbpedia_like, geo_points, sample_centroids


def graph_cluster(edges, n=4):
    cluster = Cluster(n)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=2)
    return cluster


SMALL_GRAPH = [(0, 1), (0, 2), (1, 2), (2, 0), (2, 3), (3, 0)]


class TestPageRank:
    def test_matches_reference_on_small_graph(self):
        cluster = graph_cluster(SMALL_GRAPH)
        scores, _ = run_pagerank(cluster, tol=0.0)
        expected = pagerank_reference(SMALL_GRAPH)
        assert set(scores) == set(expected)
        for v in expected:
            assert scores[v] == pytest.approx(expected[v], rel=1e-6)

    def test_matches_networkx_on_generated_graph(self):
        edges = dbpedia_like(300, avg_out_degree=6, seed=11)
        cluster = graph_cluster(edges)
        scores, _ = run_pagerank(cluster, tol=0.0)
        expected = pagerank_networkx(edges)
        for v in expected:
            assert scores[v] == pytest.approx(expected[v], rel=1e-4), v

    def test_delta_and_nodelta_agree(self):
        edges = dbpedia_like(200, avg_out_degree=5, seed=3)
        c1 = graph_cluster(edges)
        delta_scores, delta_m = run_pagerank(c1, mode="delta", tol=0.0)
        c2 = graph_cluster(edges)
        full_scores, full_m = run_pagerank(c2, mode="nodelta",
                                           max_strata=delta_m.num_iterations)
        for v in delta_scores:
            assert full_scores[v] == pytest.approx(delta_scores[v], rel=1e-3)

    def test_delta_mode_processes_fewer_tuples(self):
        """The headline claim: Δ iteration shrinks the per-iteration work."""
        edges = dbpedia_like(300, avg_out_degree=6, seed=4)
        c1 = graph_cluster(edges)
        _, dm = run_pagerank(c1, mode="delta", tol=0.01)
        c2 = graph_cluster(edges)
        _, fm = run_pagerank(c2, mode="nodelta", max_strata=dm.num_iterations)
        assert dm.total_tuples() < fm.total_tuples()

    def test_delta_set_shrinks_over_iterations(self):
        edges = dbpedia_like(400, avg_out_degree=8, seed=5)
        cluster = graph_cluster(edges)
        _, metrics = run_pagerank(cluster, tol=0.01)
        deltas = metrics.delta_series()
        assert deltas[-1] == 0
        peak = max(deltas)
        assert deltas[-2] < peak  # convergence tail

    def test_deterministic_across_cluster_sizes(self):
        edges = dbpedia_like(150, avg_out_degree=5, seed=6)
        results = []
        for n in (1, 3):
            scores, _ = run_pagerank(graph_cluster(edges, n), tol=0.0)
            results.append(scores)
        for v in results[0]:
            assert results[0][v] == pytest.approx(results[1][v], rel=1e-9)


class TestSSSP:
    def run(self, edges, source=0, n=4):
        cluster = graph_cluster(edges, n)
        make_start_table(cluster, source)
        return run_sssp(cluster)

    def test_matches_bfs_reference(self):
        edges = dbpedia_like(300, avg_out_degree=4, seed=7)
        got, _ = self.run(edges)
        expected = sssp_reference(edges, 0)
        assert {v: d for v, (_, d) in got.items()} == expected

    def test_parent_pointers_form_shortest_tree(self):
        edges = SMALL_GRAPH
        got, _ = self.run(edges)
        dists = {v: d for v, (_, d) in got.items()}
        for v, (parent, d) in got.items():
            if v == 0:
                assert parent == -1 and d == 0
            else:
                assert dists[parent] == d - 1
                assert (parent, v) in edges

    def test_unreachable_vertices_absent(self):
        edges = [(0, 1), (5, 6)]
        got, _ = self.run(edges)
        assert set(got) == {0, 1}

    def test_iterations_match_eccentricity(self):
        chain = [(i, i + 1) for i in range(10)]
        got, metrics = self.run(chain, n=2)
        assert {v: d for v, (_, d) in got.items()} == {
            i: float(i) for i in range(11)}
        # 1 base stratum + 10 productive hops + 1 empty closing stratum.
        assert metrics.num_iterations == 12


class TestKMeans:
    def test_matches_lloyd_reference(self):
        points = geo_points(300, n_clusters=4, seed=8, spread=0.8)
        centroids = sample_centroids(points, 4, seed=9)
        cluster = Cluster(3)
        cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                             points, None)
        cluster.create_table("centroids0",
                             ["cid:Integer", "x:Double", "y:Double"],
                             centroids, "cid")
        got, metrics = run_kmeans(cluster)
        expected, _, ref_iters = kmeans_reference(points, centroids)
        live = {cid: pos for cid, pos in got.items()
                if pos != (None, None)}
        for cid, (x, y) in expected.items():
            if cid in live:
                assert live[cid][0] == pytest.approx(x, abs=1e-6)
                assert live[cid][1] == pytest.approx(y, abs=1e-6)

    def test_converges_when_no_points_switch(self):
        points = geo_points(200, n_clusters=3, seed=10, spread=0.5)
        centroids = sample_centroids(points, 3, seed=11)
        cluster = Cluster(2)
        cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                             points, None)
        cluster.create_table("centroids0",
                             ["cid:Integer", "x:Double", "y:Double"],
                             centroids, "cid")
        _, metrics = run_kmeans(cluster)
        assert metrics.delta_series()[-1] == 0
        assert metrics.num_iterations < 120  # genuinely converged


class TestAdsorption:
    def test_label_weights_converge_and_spread(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 0)]
        seeds = {(0, "A"): 1.0, (2, "B"): 1.0}
        cluster = graph_cluster(edges, 2)
        cluster.create_table("labels",
                             ["v:Integer", "label:Varchar", "w:Double"],
                             [(v, l, w) for (v, l), w in seeds.items()], "v")
        weights, metrics = run_adsorption(cluster, seeds, tol=1e-6,
                                          max_strata=150)
        # Every vertex on the cycle eventually carries both labels.
        for v in range(4):
            assert weights.get((v, "A"), 0) > 0
            assert weights.get((v, "B"), 0) > 0
        # The fixpoint satisfies the damped propagation recurrence.
        outdeg = {0: 1, 1: 2, 2: 1, 3: 1}
        for v in range(4):
            for label in ("A", "B"):
                incoming = sum(weights.get((u, label), 0) / outdeg[u]
                               for u, d in edges if d == v)
                inject = seeds.get((v, label), 0.0)
                assert weights[(v, label)] == pytest.approx(
                    inject + 0.85 * incoming, rel=1e-4)
        assert metrics.delta_series()[-1] == 0

    def test_fixpoint_satisfies_recurrence(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        seeds = {(0, "A"): 1.0}
        cluster = graph_cluster(edges, 2)
        cluster.create_table("labels",
                             ["v:Integer", "label:Varchar", "w:Double"],
                             [(0, "A", 1.0)], "v")
        weights, _ = run_adsorption(cluster, seeds, tol=1e-6, max_strata=150)
        outdeg = {0: 1, 1: 1, 2: 1}
        for v in range(3):
            incoming = sum(weights.get((u, "A"), 0) / outdeg[u]
                           for u, d in edges if d == v)
            inject = seeds.get((v, "A"), 0.0)
            assert weights[(v, "A")] == pytest.approx(
                inject + 0.85 * incoming, rel=1e-5)
