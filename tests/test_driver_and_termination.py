"""Generic wrapped-job driver templates and explicit termination helpers."""

import pytest

from repro.algorithms import make_start_table, run_pagerank, run_sssp
from repro.cluster import Cluster
from repro.common.errors import PlanError
from repro.datasets import dbpedia_like, lineitem
from repro.datasets.tpch import LINEITEM_SCHEMA
from repro.hadoop import run_wrapped_jobs, simple_agg_job, wrap_job_chain
from repro.hadoop.jobs import MapReduceJob, Mapper, Reducer
from repro.runtime import (
    ExecOptions,
    PScan,
    after_iterations,
    any_of,
    changed_fraction_below,
    stable_for,
)


class TestWrapJobTemplate:
    def test_single_job_equals_direct_computation(self):
        rows = lineitem(500)
        cluster = Cluster(3)
        cluster.create_table("lineitem", LINEITEM_SCHEMA, rows, None)
        out, metrics = run_wrapped_jobs(
            cluster, [simple_agg_job()], "lineitem",
            kv_extractor=lambda r: (r[0], (r[1], r[5])))
        assert len(out) == 1
        _, (total, count) = out[0]
        kept = [r for r in rows if r[1] > 1]
        assert count == len(kept)
        assert total == pytest.approx(sum(r[5] for r in kept))

    def test_chained_jobs(self):
        """Job 1 counts per key; job 2 histograms the counts."""

        class CountMapper(Mapper):
            def map(self, key, value):
                yield (key % 5, 1)

        class SumReducer(Reducer):
            def reduce(self, key, values):
                yield (key, sum(values))

        class InvertMapper(Mapper):
            def map(self, key, value):
                yield (value, 1)

        job1 = MapReduceJob("count", [CountMapper()], SumReducer(),
                            combiner=SumReducer())
        job2 = MapReduceJob("hist", [InvertMapper()], SumReducer())
        cluster = Cluster(3)
        cluster.create_table("t", ["k:Integer", "v:Integer"],
                             [(i, i) for i in range(50)], "k")
        out, _ = run_wrapped_jobs(cluster, [job1, job2], "t")
        # 50 keys over 5 buckets -> every bucket counts 10; histogram {10: 5}
        assert sorted(out) == [(10, 5)]

    def test_multi_input_job_rejected(self):
        from repro.hadoop.jobs import TagMapper, PRJoinReducer

        job = MapReduceJob("join", [TagMapper("A"), TagMapper("R")],
                           PRJoinReducer())
        with pytest.raises(PlanError):
            wrap_job_chain([job], PScan("t"))

    def test_empty_chain_rejected(self):
        with pytest.raises(PlanError):
            wrap_job_chain([], PScan("t"))


EDGES = dbpedia_like(400, avg_out_degree=5, seed=91)


def graph_cluster():
    cluster = Cluster(3)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         EDGES, "srcId")
    return cluster


class TestTerminationHelpers:
    def test_after_iterations(self):
        opts = ExecOptions(termination=after_iterations(3))
        _, m = run_pagerank(graph_cluster(), tol=0.0, options=opts)
        assert m.num_iterations == 4  # strata 0..3

    def test_changed_fraction_below(self):
        """The paper's explicit condition: stop when <10% of pages moved
        by more than 1% between consecutive iterations."""
        opts = ExecOptions(
            termination=changed_fraction_below(0.10, value_index=1,
                                               tol=0.01))
        _, explicit_m = run_pagerank(graph_cluster(), tol=0.0, options=opts)
        _, full_m = run_pagerank(graph_cluster(), tol=0.0)
        assert explicit_m.num_iterations < full_m.num_iterations

    def test_stable_for(self):
        cluster = graph_cluster()
        make_start_table(cluster, 0)
        opts = ExecOptions(termination=stable_for(2))
        dists, m = run_sssp(cluster, options=opts)
        # Stability tracking must not cut the computation short.
        from repro.algorithms import sssp_reference

        assert {v: d for v, (_, d) in dists.items()} == {
            v: float(d) for v, d in sssp_reference(EDGES, 0).items()}

    def test_any_of(self):
        opts = ExecOptions(termination=any_of(after_iterations(100),
                                              after_iterations(2)))
        _, m = run_pagerank(graph_cluster(), tol=0.0, options=opts)
        assert m.num_iterations == 3
