"""Unit tests for the delta (annotated tuple) model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import Delta, DeltaOp, delete, insert, replace, update
from repro.common.deltas import apply_deltas

rows = st.tuples(st.integers(), st.integers())


class TestConstruction:
    def test_insert(self):
        d = insert((1, 2))
        assert d.op is DeltaOp.INSERT
        assert d.row == (1, 2)
        assert d.old is None and d.payload is None

    def test_delete(self):
        d = delete((3,))
        assert d.op is DeltaOp.DELETE
        assert d.row == (3,)

    def test_replace_carries_old(self):
        d = replace((1, 10), (1, 20))
        assert d.op is DeltaOp.REPLACE
        assert d.row == (1, 20)
        assert d.old == (1, 10)

    def test_update_carries_payload(self):
        d = update((7,), payload=0.25)
        assert d.op is DeltaOp.UPDATE
        assert d.payload == 0.25

    def test_replace_requires_old(self):
        with pytest.raises(ValueError):
            Delta(DeltaOp.REPLACE, (1,))

    def test_insert_rejects_old(self):
        with pytest.raises(ValueError):
            Delta(DeltaOp.INSERT, (1,), old=(2,))

    def test_insert_rejects_payload(self):
        with pytest.raises(ValueError):
            Delta(DeltaOp.INSERT, (1,), payload=3)

    def test_rows_coerced_to_tuples(self):
        assert insert([1, 2]).row == (1, 2)

    def test_deltas_are_hashable_value_objects(self):
        assert insert((1,)) == insert((1,))
        assert len({insert((1,)), insert((1,)), delete((1,))}) == 2


class TestWithRow:
    def test_insert_with_row_keeps_annotation(self):
        d = insert((1, 2)).with_row((2,))
        assert d.op is DeltaOp.INSERT and d.row == (2,)

    def test_update_with_row_keeps_payload(self):
        d = update((1,), payload="E").with_row((9,))
        assert d.op is DeltaOp.UPDATE and d.payload == "E"

    def test_replace_with_row_requires_old(self):
        d = replace((1, 1), (1, 2))
        with pytest.raises(ValueError):
            d.with_row((2,))
        d2 = d.with_row((2,), old=(1,))
        assert d2.row == (2,) and d2.old == (1,)


class TestInversion:
    def test_insert_inverts_to_delete(self):
        assert insert((1,)).inverted() == delete((1,))

    def test_delete_inverts_to_insert(self):
        assert delete((1,)).inverted() == insert((1,))

    def test_replace_inverts_to_reverse_replace(self):
        assert replace((1,), (2,)).inverted() == replace((2,), (1,))

    def test_update_is_not_invertible(self):
        with pytest.raises(ValueError):
            update((1,), payload=1).inverted()

    @given(rows)
    def test_double_inversion_is_identity(self, row):
        d = insert(row)
        assert d.inverted().inverted() == d


class TestApplyDeltas:
    def test_insert_delete_replace(self):
        out = apply_deltas({(1,)}, [insert((2,)), delete((1,)),
                                    replace((2,), (3,))])
        assert out == {(3,)}

    def test_delete_of_absent_row_is_noop(self):
        assert apply_deltas(set(), [delete((9,))]) == set()

    def test_update_rejected(self):
        with pytest.raises(ValueError):
            apply_deltas(set(), [update((1,), payload=1)])

    @given(st.sets(rows, max_size=20), st.lists(rows, max_size=20))
    def test_insert_then_delete_cancels(self, base, extra):
        """Inserting rows then deleting them restores the base set."""
        deltas = [insert(r) for r in extra] + [delete(r) for r in extra]
        assert apply_deltas(base, deltas) == base - set(extra)

    @given(st.sets(rows, max_size=20))
    def test_inverted_sequence_undoes(self, base):
        forward = [insert((99, 99)), replace((99, 99), (98, 98))]
        applied = apply_deltas(base, forward)
        restored = apply_deltas(applied, [d.inverted() for d in reversed(forward)])
        assert restored == base | ({(99, 99)} & base)


class TestRepr:
    """The repr is compact and annotation-explicit: the kind symbol leads,
    row images follow — Δ+(...), Δ-(...), Δ->(new|old=(...)), Δδ(...)."""

    def test_insert(self):
        assert repr(insert((1, 2))) == "Δ+(1,2)"

    def test_delete(self):
        assert repr(delete((1,))) == "Δ-(1)"

    def test_replace_shows_both_images(self):
        assert repr(replace((1, "a"), (1, "b"))) == "Δ->(1,'b'|old=(1,'a'))"

    def test_update_shows_payload(self):
        assert repr(update((3,), payload=0.5)) == "Δδ((3)|payload=0.5)"

    def test_annotation_symbol_leads(self):
        for d, sym in [(insert((1,)), "+"), (delete((1,)), "-"),
                       (replace((1,), (2,)), "->"),
                       (update((1,), payload=0), "δ")]:
            assert repr(d).startswith("Δ" + sym)

    def test_punctuation_repr(self):
        from repro.common.punctuation import Punctuation
        assert repr(Punctuation.end_of_stratum(3)) == "Punct(eos@3)"
        assert repr(Punctuation.end_of_query(7)) == "Punct(eoq@7)"
