"""UDF calibration and cost hints (Section 5.1)."""

import time

import pytest

from repro.cluster import Cluster
from repro.common.errors import UDFError
from repro.optimizer import apply_profile, calibrate_udf
from repro.udf import udf


class TestCalibration:
    def test_measures_per_call_time(self):
        @udf(in_types=["Integer"])
        def slowish(n):
            time.sleep(0.001)
            return n

        profile = calibrate_udf(slowish, [(1,), (2,)], repeats=1)
        assert profile.per_call_seconds >= 0.001
        assert profile.samples == 2

    def test_predicate_selectivity_observed(self):
        @udf(in_types=["Integer"], out_types=["Boolean"])
        def over_five(n):
            return n > 5

        profile = calibrate_udf(over_five, [(i,) for i in range(10)])
        assert profile.selectivity == pytest.approx(0.4)

    def test_table_valued_productivity_observed(self):
        @udf(in_types=["Integer"], table_valued=True)
        def repeat(n):
            return [(i,) for i in range(n)]

        profile = calibrate_udf(repeat, [(0,), (2,), (4,)])
        assert profile.selectivity == pytest.approx(2.0)

    def test_scalar_selectivity_defaults_to_one(self):
        @udf(in_types=["Integer"])
        def ident(n):
            return n

        assert calibrate_udf(ident, [(1,)]).selectivity == 1.0

    def test_requires_samples(self):
        @udf()
        def f(x):
            return x

        with pytest.raises(UDFError):
            calibrate_udf(f, [])

    def test_cost_hint_coefficient_fitted(self):
        """The paper's value-dependent case: a hint gives the big-O shape,
        calibration fits the coefficient, prediction extrapolates."""

        def busy(n):
            total = 0
            for i in range(n * 200):
                total += i
            return total

        @udf(in_types=["Integer"], cost_hint=lambda n: float(n))
        def iterate(n):
            return busy(n)

        profile = calibrate_udf(iterate, [(5,), (10,), (20,)], repeats=3)
        assert profile.hint_coefficient is not None
        # Prediction should scale ~linearly with the hint argument.
        small = profile.cost_for(10)
        large = profile.cost_for(100)
        assert large == pytest.approx(10 * small, rel=1e-9)

    def test_apply_profile_feeds_optimizer(self):
        @udf(in_types=["Integer"], out_types=["Boolean"])
        def pred(n):
            return n % 2 == 0

        profile = calibrate_udf(pred, [(i,) for i in range(8)])
        apply_profile(pred, profile)
        assert pred.selectivity == pytest.approx(0.5)
        assert pred.calibrated_cost == profile.per_call_seconds

        # The cost estimator should pick the calibrated number up.
        from repro.operators.expressions import ColumnRef, FuncCall
        from repro.optimizer import CostEstimator, StatisticsCatalog
        from repro.optimizer.logical import LFilter, LScan

        cluster = Cluster(2)
        cluster.create_table("t", ["n:Integer"], [(i,) for i in range(10)],
                             "n")
        estimator = CostEstimator(StatisticsCatalog(cluster.catalog),
                                  cluster.cost, 2)
        table = cluster.catalog.get("t")
        node = LFilter(LScan("t", table.schema, "n"),
                       FuncCall(pred, [ColumnRef("n")]))
        assert estimator.predicate_cost(node) == pytest.approx(
            cluster.cost.cpu_tuple_cost + profile.per_call_seconds)
        assert estimator.selectivity_of(node) == pytest.approx(0.5)
