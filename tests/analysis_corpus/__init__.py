"""Seeded corpus of deliberately-broken plans for the static analyzer.

Each case is a named builder returning a plan plus the diagnostic codes
the analyzer must report for it; ``GOOD_CASES`` are well-formed plans
that must produce zero error-level diagnostics.  The corpus is the
analyzer's regression anchor: every published code has at least one
case here that triggers it (and CI runs the analyzer over all of them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Union

from repro.common.deltas import DeltaOp
from repro.common.schema import Field as F
from repro.common.schema import Schema, SQLType
from repro.operators.expressions import (
    BinaryOp,
    BoolOp,
    ColumnRef,
    FuncCall,
    Literal,
)
from repro.optimizer.logical import (
    LAggCall,
    LFilter,
    LFixpoint,
    LFeedback,
    LGroupBy,
    LJoin,
    LNode,
    LProject,
    LRehash,
    LScan,
)
from repro.runtime.plan import (
    PApply,
    PCollect,
    PFeedback,
    PFilter,
    PFixpoint,
    PGroupBy,
    PJoin,
    PNode,
    PProject,
    PRehash,
    PScan,
    PUnion,
)
from repro.udf import AggregateSpec
from repro.udf.builtins import CollectList, Count, Sum


@dataclass(frozen=True)
class Case:
    name: str
    build: Callable[[], Union[LNode, PNode]]
    expected: FrozenSet[str] = field(default_factory=frozenset)

    def plan(self):
        return self.build()


def _schema(*cols) -> Schema:
    return Schema([F(n, t) for n, t in cols])


def _edges(partition_key=None) -> LScan:
    return LScan("edges",
                 _schema(("srcId", SQLType.INTEGER),
                         ("destId", SQLType.INTEGER),
                         ("weight", SQLType.DOUBLE)),
                 partition_key=partition_key)


def _seed(partition_key="node") -> LScan:
    return LScan("seed",
                 _schema(("node", SQLType.INTEGER),
                         ("val", SQLType.DOUBLE)),
                 partition_key=partition_key)


def _feedback(cte="R") -> LFeedback:
    return LFeedback(cte,
                     _schema(("node", SQLType.INTEGER),
                             ("val", SQLType.DOUBLE)),
                     fixpoint_key="node")


def _converged(child: LNode) -> LFilter:
    """A convergence filter (contraction) over (node, val)."""
    return LFilter(child, BinaryOp(">", ColumnRef("val"), Literal(0.0)))


class _Handler:
    name = "H"


def _handler_factory():
    return _Handler()


class _NoMultiplySum(Sum):
    name = "sum_nm"
    multiply = None


class _TypedSum(Sum):
    """SUM with an explicit single-argument declaration (arity checks
    need declared in_types; the built-ins leave them open)."""

    name = "tsum"
    in_types = ("x:Double",)


class _MultiplyUDF:
    """Stands in for the optimizer's synthesized compensation UDF."""

    name = "multiply_val"
    input_fields = ()
    output_fields = ()
    table_valued = False


# ---------------------------------------------------------------------------
# Logical bad plans
# ---------------------------------------------------------------------------

def nested_fixpoint() -> LNode:
    inner = LFixpoint(_seed(), _converged(_feedback("Inner")),
                      key="node", cte_name="Inner")
    return LFixpoint(_seed(), _converged(inner), key="node", cte_name="R")


def negation_in_recursion() -> LNode:
    guard = LFilter(
        _feedback(),
        BoolOp("not", [BinaryOp(">", ColumnRef("val"), Literal(0.5))]))
    return LFixpoint(_seed(), guard, key="node", cte_name="R")


def double_feedback() -> LNode:
    recursive = LJoin(_feedback(), _feedback(), condition=("node", "node"))
    return LFixpoint(_seed(), _converged(recursive),
                     key="node", cte_name="R")


def feedback_in_base() -> LNode:
    return LFixpoint(_converged(_feedback()), _converged(_feedback()),
                     key="node", cte_name="R")


def union_all_no_contraction() -> LNode:
    recursive = LProject(
        _feedback(),
        [(ColumnRef("node"), F("node", SQLType.INTEGER)),
         (ColumnRef("val"), F("val", SQLType.DOUBLE))])
    return LFixpoint(_seed(), recursive, key="node", cte_name="R",
                     union_all=True)


def non_composable_preagg() -> LNode:
    partial = LGroupBy(
        _edges("srcId"), ["srcId"],
        [LAggCall("collect", CollectList, [ColumnRef("weight")],
                  [F("ws", SQLType.LIST)])],
        pre_aggregated=True)
    return LGroupBy(LRehash(partial, "srcId"), ["srcId"],
                    [LAggCall("collect", CollectList, [ColumnRef("ws")],
                              [F("ws2", SQLType.LIST)])])


def escaping_partials() -> LNode:
    return LGroupBy(
        _edges("srcId"), ["srcId"],
        [LAggCall("sum", Sum, [ColumnRef("weight")],
                  [F("_p0", SQLType.DOUBLE)], composable=True)],
        pre_aggregated=True)


def _side_preagg(scan: LScan, key: str, agg_factory, agg_name: str,
                 cnt_name: str) -> LGroupBy:
    return LGroupBy(
        scan, [key],
        [LAggCall(agg_name, agg_factory, [ColumnRef("weight")],
                  [F("_m0", SQLType.DOUBLE)], composable=True),
         LAggCall("count", Count, [],
                  [F(cnt_name, SQLType.INTEGER)], composable=True)],
        pre_aggregated=True)


def multiplicative_no_multiply() -> LNode:
    left = _side_preagg(_edges("srcId"), "srcId",
                        _NoMultiplySum, "sum_nm", "_cnt_1")
    right = _side_preagg(_edges("srcId"), "srcId", Sum, "sum", "_cnt_2")
    join = LJoin(left, right, condition=("srcId", "srcId"))
    return LProject(
        join,
        [(FuncCall(_MultiplyUDF(), [ColumnRef("_m0")]),
          F("total", SQLType.DOUBLE))])


def multiplicative_no_compensation() -> LNode:
    left = _side_preagg(_edges("srcId"), "srcId", Sum, "sum", "_cnt_1")
    right = _side_preagg(_edges("srcId"), "srcId", Sum, "sum", "_cnt_2")
    return LJoin(left, right, condition=("srcId", "srcId"))


def missing_rehash() -> LNode:
    return LGroupBy(
        _edges(partition_key=None), ["srcId"],
        [LAggCall("sum", Sum, [ColumnRef("weight")],
                  [F("total", SQLType.DOUBLE)], composable=True)])


def redundant_rehash() -> LNode:
    rehash = LRehash(_edges(partition_key="srcId"), "srcId")
    return LGroupBy(
        rehash, ["srcId"],
        [LAggCall("sum", Sum, [ColumnRef("weight")],
                  [F("total", SQLType.DOUBLE)], composable=True)])


def starved_handler() -> LNode:
    handler_join = LJoin(
        _edges("srcId"), _seed("node"), condition=None,
        handler_factory=_handler_factory,
        handler_schema=_schema(("node", SQLType.INTEGER),
                               ("val", SQLType.DOUBLE)))
    recursive = LJoin(_converged(handler_join), _feedback(),
                      condition=("node", "node"))
    return LFixpoint(_seed(), recursive, key="node", cte_name="R")


def uninterpreted_payload() -> LNode:
    handler_join = LJoin(
        _feedback(), _edges("srcId"), condition=None,
        handler_factory=_handler_factory,
        handler_schema=_schema(("node", SQLType.INTEGER),
                               ("val", SQLType.DOUBLE)))
    return LFixpoint(_seed(), handler_join, key="node", cte_name="R")


def unknown_column() -> LNode:
    return LFilter(_edges(), BinaryOp(">", ColumnRef("nope"), Literal(0)))


def join_type_mismatch() -> LNode:
    names = LScan("names", _schema(("id", SQLType.INTEGER),
                                   ("label", SQLType.VARCHAR)),
                  partition_key=None)
    return LJoin(LRehash(_edges(), "srcId"), LRehash(names, "label"),
                 condition=("srcId", "label"))


def aggregate_arity_mismatch() -> LNode:
    return LGroupBy(
        LRehash(_edges(), "srcId"), ["srcId"],
        [LAggCall("tsum", _TypedSum,
                  [ColumnRef("weight"), ColumnRef("destId")],
                  [F("total", SQLType.DOUBLE)], composable=True)])


def fixpoint_arity_mismatch() -> LNode:
    wide = LProject(
        _converged(_feedback()),
        [(ColumnRef("node"), F("node", SQLType.INTEGER)),
         (ColumnRef("val"), F("val", SQLType.DOUBLE)),
         (Literal(0), F("extra", SQLType.INTEGER))])
    return LFixpoint(_seed(), wide, key="node", cte_name="R")


# ---------------------------------------------------------------------------
# Physical bad plans (bare PNode trees: PhysicalPlan's constructor would
# reject some of these shapes outright — the analyzer must explain them)
# ---------------------------------------------------------------------------

def _key0(row):
    return (row[0],)


def phys_two_fixpoints() -> PNode:
    def fp():
        return PFixpoint(key_fn=_key0,
                         children=(PScan("seed"), PFeedback()))
    return PCollect(children=(PUnion(children=(fp(), fp())),))


def phys_feedback_without_fixpoint() -> PNode:
    return PCollect(children=(PFeedback(),))


def phys_double_feedback() -> PNode:
    recursive = PJoin(left_key=_key0, right_key=_key0,
                      children=(PFeedback(), PFeedback()))
    return PCollect(children=(
        PFixpoint(key_fn=_key0, children=(PScan("seed"), recursive)),))


def phys_broadcast_broadcast() -> PNode:
    inner = PRehash(broadcast=True, children=(PScan("edges"),))
    return PCollect(children=(PRehash(broadcast=True, children=(inner,)),))


def phys_starved_handler() -> PNode:
    handler_join = PJoin(left_key=_key0, right_key=_key0,
                         handler_factory=_handler_factory,
                         children=(PScan("edges"), PScan("seed")))
    recursive = PUnion(children=(handler_join, PFeedback()))
    return PCollect(children=(
        PFixpoint(key_fn=_key0, children=(PScan("seed"), recursive)),))


# ---------------------------------------------------------------------------
# Delta-polarity & monotonicity plans (REX30x): each case anchors one
# verdict of the abstract interpretation.  These are mostly *well-formed*
# plans — REX300/301/304 are INFO proofs, not defects — so they live in
# their own list rather than BAD_CASES.
# ---------------------------------------------------------------------------

class _DeltaAwareUDF:
    """A delta-aware applyFunction UDF with a declared emission polarity."""

    table_valued = False

    def __call__(self, delta):
        return ()


class _RetractingRelax(_DeltaAwareUDF):
    """An SSSP-style relaxation that may withdraw offers (emits '-')."""

    name = "relax_retract"
    emits_polarity = frozenset({DeltaOp.INSERT, DeltaOp.DELETE})


class _ReplaceOnlyUpdate(_DeltaAwareUDF):
    """A k-means-style centroid update emitting only replacements."""

    name = "centroid_replace"
    emits_polarity = frozenset({DeltaOp.REPLACE})


class _UpdateOnlyUDF(_DeltaAwareUDF):
    """Emits only δ value-update annotations."""

    name = "delta_adjust"
    emits_polarity = frozenset({DeltaOp.UPDATE})


class _InsertOnlyHandler:
    """A join delta handler declared to emit pure insertions."""

    name = "offers"
    emits_polarity = frozenset({DeltaOp.INSERT})


def _ident(row):
    return row


def _sum_specs():
    return [AggregateSpec(Sum(), arg=lambda r: r[1], output="total")]


def polarity_monotone_fixpoint() -> PNode:
    """PageRank-style loop: nothing in the body can retract -> REX301."""
    recursive = PProject.over(PFeedback(), _ident)
    return PCollect(children=(
        PFixpoint(key_fn=_key0, children=(PScan("seed"), recursive)),))


def polarity_dead_delete_fixpoint() -> PNode:
    """Same monotone loop seen from the fixpoint's delete handling: the
    '-' branch of keyed dedup is provably unreachable -> REX304."""
    recursive = PProject.over(PFeedback(), _ident)
    return PCollect(children=(
        PFixpoint(key_fn=_key0, children=(PScan("seed"), recursive)),))


def polarity_retracting_body() -> PNode:
    """A relaxation that withdraws offers: the loop can shrink -> REX302."""
    recursive = PApply(udf_factory=_RetractingRelax, arg_fn=_ident,
                       delta_aware=True, children=(PFeedback(),))
    return PCollect(children=(
        PFixpoint(key_fn=_key0, children=(PScan("seed"), recursive)),))


def polarity_replacement_only_groupby() -> PNode:
    """Replacement-only stream into a group-by: a '->' may arrive before
    any base image exists -> REX305."""
    updates = PApply(udf_factory=_ReplaceOnlyUpdate, arg_fn=_ident,
                     delta_aware=True, children=(PScan("centroids"),))
    return PCollect(children=(
        PGroupBy(key_fn=_key0, specs_factory=_sum_specs,
                 children=(PRehash.by(updates, _key0),)),))


def polarity_update_into_keyed_fixpoint() -> PNode:
    """δ annotations reaching a keyed fixpoint with no while handler:
    the operator rejects them at runtime -> REX305."""
    recursive = PApply(udf_factory=_UpdateOnlyUDF, arg_fn=_ident,
                       delta_aware=True, children=(PFeedback(),))
    return PCollect(children=(
        PFixpoint(key_fn=_key0, children=(PScan("seed"), recursive)),))


def polarity_key_destroying_project() -> LNode:
    """Recursive-branch Project that drops the fixpoint key -> REX303."""
    bad = LProject(_feedback(),
                   [(ColumnRef("val"), F("val", SQLType.DOUBLE))])
    return LFixpoint(_seed(), bad, key="node", cte_name="R")


def polarity_insert_only_groupby() -> PNode:
    """Scan-fed group-by is proven insert-only -> REX300 (and its
    retraction branches are dead -> REX304)."""
    return PCollect(children=(
        PGroupBy(key_fn=_key0, specs_factory=_sum_specs,
                 children=(PRehash.by(PScan("edges"), _key0),)),))


def polarity_declared_handler_proof() -> PNode:
    """A declared insert-only join handler propagates the proof to the
    downstream group-by -> REX300."""
    join = PJoin(left_key=_key0, right_key=_key0,
                 handler_factory=_InsertOnlyHandler, handler_side=1,
                 children=(PScan("edges"), PScan("seed")))
    return PCollect(children=(
        PGroupBy(key_fn=_key0, specs_factory=_sum_specs,
                 children=(PRehash.by(join, _key0),)),))


def polarity_undeclared_join_handler() -> PNode:
    """A join delta handler with no emits_polarity widens to any -> REX306."""
    join = PJoin(left_key=_key0, right_key=_key0,
                 handler_factory=_handler_factory, handler_side=1,
                 children=(PScan("edges"), PScan("seed")))
    return PCollect(children=(join,))


def polarity_undeclared_while_handler() -> PNode:
    """A while delta handler with no emits_polarity widens to any -> REX306."""
    return PCollect(children=(
        PFixpoint(key_fn=_key0, while_handler_factory=_handler_factory,
                  children=(PScan("seed"), PUnion(children=(PFeedback(),)))),))


POLARITY_CASES: List[Case] = [
    Case("polarity_monotone_fixpoint", polarity_monotone_fixpoint,
         frozenset({"REX301"})),
    Case("polarity_dead_delete_fixpoint", polarity_dead_delete_fixpoint,
         frozenset({"REX304"})),
    Case("polarity_retracting_body", polarity_retracting_body,
         frozenset({"REX302"})),
    Case("polarity_replacement_only_groupby",
         polarity_replacement_only_groupby, frozenset({"REX305"})),
    Case("polarity_update_into_keyed_fixpoint",
         polarity_update_into_keyed_fixpoint, frozenset({"REX305"})),
    Case("polarity_key_destroying_project",
         polarity_key_destroying_project, frozenset({"REX303"})),
    Case("polarity_insert_only_groupby", polarity_insert_only_groupby,
         frozenset({"REX300", "REX304"})),
    Case("polarity_declared_handler_proof",
         polarity_declared_handler_proof, frozenset({"REX300"})),
    Case("polarity_undeclared_join_handler",
         polarity_undeclared_join_handler, frozenset({"REX306"})),
    Case("polarity_undeclared_while_handler",
         polarity_undeclared_while_handler, frozenset({"REX306"})),
]


# ---------------------------------------------------------------------------
# Column-lineage & UDF-effect plans (REX40x): each case anchors one
# verdict of the lineage analysis.  Like the polarity cases these are
# mostly *observations*, not defects (REX403 is the only error), so they
# get their own list.  All callables live at module level: the AST
# effect extractor needs ``inspect.getsource`` to succeed, and
# interactively-defined lambdas have no retrievable source.
# ---------------------------------------------------------------------------

def _wide3(row):
    return (row[0], row[1], row[2])


def _take0(row):
    return (row[0],)


def _key1(row):
    return (row[1],)


def _pos_weight(row):
    return row[2] > 0.0


def _noisy_pred(row):
    print(row[0])  # noqa: T201 - impurity is the point of this case
    return row[2] > 0.0


class _UnderDeclaredHandler:
    """Declares reads=(0,) but its update body also reads delta.row[1]."""

    name = "under_declared"
    reads = (0,)
    emits_polarity = frozenset({DeltaOp.INSERT})

    def update(self, state, delta, out):  # noqa: REX107 - seeded defect
        node, val = delta.row[0], delta.row[1]
        out.insert((node, val))


def _first_field(row):
    return (row[0],)


class _OverDeclaredUDF:
    """Declares reads=(0, 1, 2) but its body provably reads only row[0]."""

    name = "over_declared"
    table_valued = False
    reads = (0, 1, 2)
    fn = staticmethod(_first_field)

    def __call__(self, row):
        return self.fn(row)


def lineage_dead_project_column() -> PNode:
    """A 3-column Project whose consumer reads only column 0 -> REX400."""
    wide = PProject.over(PScan("edges"), _wide3)
    return PCollect(children=(PProject.over(wide, _take0),))


def lineage_undeclared_handler_read() -> PNode:
    """A handler body reading past its reads= declaration -> REX401."""
    join = PJoin(left_key=_key0, right_key=_key0,
                 handler_factory=_UnderDeclaredHandler, handler_side=1,
                 children=(PScan("edges"), PScan("seed")))
    return PCollect(children=(join,))


def lineage_overdeclared_udf() -> PNode:
    """A reads= declaration naming positions the body never touches
    (extraction is exact, so the surplus is provable) -> REX402."""
    apply = PApply(udf_factory=_OverDeclaredUDF, arg_fn=_ident,
                   children=(PScan("edges"),))
    return PCollect(children=(apply,))


def lineage_key_beyond_arity() -> PNode:
    """A rehash key reading position 1 of a 1-column stream: the key
    column was projected away upstream -> REX403 (the one REX40x error)."""
    narrow = PProject.over(PScan("edges"), _take0)
    return PCollect(children=(PRehash.by(narrow, _key1),))


def lineage_blocked_pushdown_impure() -> PNode:
    """A filter above an exchange whose predicate calls outside the pure
    whitelist: pushdown must be declined -> REX404."""
    ex = PRehash.by(PScan("edges"), _key0)
    return PCollect(children=(PFilter.over(ex, _noisy_pred),))


def lineage_blocked_narrowing_polarity() -> PNode:
    """A narrow consumer above an exchange carrying δ updates: key-only
    delta rows forbid truncation, narrowing is declined -> REX404."""
    updates = PApply(udf_factory=_UpdateOnlyUDF, arg_fn=_ident,
                     delta_aware=True, children=(PScan("centroids"),))
    wide = PProject.over(updates, _wide3)
    ex = PRehash.by(wide, _key0)
    return PCollect(children=(PProject.over(ex, _take0),))


def lineage_pushdown_license() -> PNode:
    """A pure exactly-read predicate above an insert-only exchange:
    pushdown is licensed -> REX405."""
    ex = PRehash.by(PScan("edges"), _key0)
    return PCollect(children=(PFilter.over(ex, _pos_weight),))


def lineage_narrowable_exchange() -> PNode:
    """Only column 0 of 3 crossing the exchange is live and the stream
    is insert-only: narrowing is licensed -> REX406 (and the dead wide
    columns surface as REX400)."""
    wide = PProject.over(PScan("edges"), _wide3)
    ex = PRehash.by(wide, _key0)
    return PCollect(children=(PProject.over(ex, _take0),))


def lineage_opaque_key() -> PNode:
    """A key function with no retrievable source (operator.itemgetter)
    widens the analysis -> REX407."""
    import operator
    return PCollect(children=(
        PRehash.by(PScan("edges"), operator.itemgetter(0)),))


LINEAGE_CASES: List[Case] = [
    Case("lineage_dead_project_column", lineage_dead_project_column,
         frozenset({"REX400"})),
    Case("lineage_undeclared_handler_read", lineage_undeclared_handler_read,
         frozenset({"REX401"})),
    Case("lineage_overdeclared_udf", lineage_overdeclared_udf,
         frozenset({"REX402"})),
    Case("lineage_key_beyond_arity", lineage_key_beyond_arity,
         frozenset({"REX403"})),
    Case("lineage_blocked_pushdown_impure", lineage_blocked_pushdown_impure,
         frozenset({"REX404"})),
    Case("lineage_blocked_narrowing_polarity",
         lineage_blocked_narrowing_polarity,
         frozenset({"REX400", "REX404"})),
    Case("lineage_pushdown_license", lineage_pushdown_license,
         frozenset({"REX405"})),
    Case("lineage_narrowable_exchange", lineage_narrowable_exchange,
         frozenset({"REX400", "REX406"})),
    Case("lineage_opaque_key", lineage_opaque_key,
         frozenset({"REX407"})),
]


# ---------------------------------------------------------------------------
# Good plans: zero error-level diagnostics expected
# ---------------------------------------------------------------------------

def good_groupby() -> LNode:
    return LGroupBy(
        LRehash(_edges(), "srcId"), ["srcId"],
        [LAggCall("sum", Sum, [ColumnRef("weight")],
                  [F("total", SQLType.DOUBLE)], composable=True)])


def good_preagg_pair() -> LNode:
    partial = LGroupBy(
        _edges(), ["srcId"],
        [LAggCall("sum", Sum, [ColumnRef("weight")],
                  [F("_p0", SQLType.DOUBLE)], composable=True)],
        pre_aggregated=True)
    return LGroupBy(
        LRehash(partial, "srcId"), ["srcId"],
        [LAggCall("sum", Sum, [ColumnRef("_p0")],
                  [F("total", SQLType.DOUBLE)], composable=True)])


def good_fixpoint() -> LNode:
    return LFixpoint(_seed(), _converged(_feedback()),
                     key="node", cte_name="R")


def good_phys_fixpoint() -> PNode:
    recursive = PUnion(children=(PFeedback(),))
    return PCollect(children=(
        PFixpoint(key_fn=_key0, children=(PScan("seed"), recursive)),))


BAD_CASES: List[Case] = [
    Case("nested_fixpoint", nested_fixpoint, frozenset({"REX001"})),
    Case("negation_in_recursion", negation_in_recursion,
         frozenset({"REX001"})),
    Case("double_feedback", double_feedback, frozenset({"REX002"})),
    Case("feedback_in_base", feedback_in_base, frozenset({"REX002"})),
    Case("union_all_no_contraction", union_all_no_contraction,
         frozenset({"REX002"})),
    Case("non_composable_preagg", non_composable_preagg,
         frozenset({"REX003"})),
    Case("escaping_partials", escaping_partials, frozenset({"REX003"})),
    Case("multiplicative_no_multiply", multiplicative_no_multiply,
         frozenset({"REX004"})),
    Case("multiplicative_no_compensation", multiplicative_no_compensation,
         frozenset({"REX004"})),
    Case("missing_rehash", missing_rehash, frozenset({"REX005"})),
    Case("redundant_rehash", redundant_rehash, frozenset({"REX006"})),
    Case("starved_handler", starved_handler, frozenset({"REX007"})),
    Case("uninterpreted_payload", uninterpreted_payload,
         frozenset({"REX007"})),
    Case("unknown_column", unknown_column, frozenset({"REX008"})),
    Case("join_type_mismatch", join_type_mismatch, frozenset({"REX008"})),
    Case("aggregate_arity_mismatch", aggregate_arity_mismatch,
         frozenset({"REX008"})),
    Case("fixpoint_arity_mismatch", fixpoint_arity_mismatch,
         frozenset({"REX008"})),
    Case("phys_two_fixpoints", phys_two_fixpoints, frozenset({"REX001"})),
    Case("phys_feedback_without_fixpoint", phys_feedback_without_fixpoint,
         frozenset({"REX002"})),
    Case("phys_double_feedback", phys_double_feedback,
         frozenset({"REX002"})),
    Case("phys_broadcast_broadcast", phys_broadcast_broadcast,
         frozenset({"REX006"})),
    Case("phys_starved_handler", phys_starved_handler,
         frozenset({"REX007"})),
]

GOOD_CASES: List[Case] = [
    Case("good_groupby", good_groupby),
    Case("good_preagg_pair", good_preagg_pair),
    Case("good_fixpoint", good_fixpoint),
    Case("good_phys_fixpoint", good_phys_fixpoint),
]
