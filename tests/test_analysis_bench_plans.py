"""Property test (acceptance criterion): every plan the optimizer or the
algorithm builders produce for the benchmark workloads (fig02–fig12 plus
the ablations' query shapes) passes the static analyzer with zero
error-level diagnostics."""

import pytest

from repro.algorithms import MonotoneMinDist, PRAgg, SPAgg
from repro.algorithms.adsorption import adsorption_plan
from repro.algorithms.kmeans import CentroidAvg, KMAgg, kmeans_plan
from repro.algorithms.pagerank import pagerank_plan
from repro.algorithms.sssp import sssp_plan
from repro.analysis import analyze_physical
from repro.cluster import Cluster
from repro.datasets import dbpedia_like, geo_points, lineitem, \
    sample_centroids
from repro.rql import RQLSession

from tests.test_rql_e2e import KMEANS_RQL, PAGERANK_RQL, SSSP_RQL

PHYSICAL_BUILDERS = {
    "fig02/06/08_pagerank_delta": lambda: pagerank_plan(mode="delta"),
    "fig02_pagerank_nodelta": lambda: pagerank_plan(mode="nodelta"),
    "fig05_kmeans": lambda: kmeans_plan(),
    "fig07/09_sssp_argmin": lambda: sssp_plan(use_argmin_groupby=True),
    "fig07_sssp_direct": lambda: sssp_plan(use_argmin_groupby=False),
    "fig10/11/12_adsorption": lambda: adsorption_plan({(0, "seed"): 1.0}),
}


@pytest.mark.parametrize("name", sorted(PHYSICAL_BUILDERS),
                         ids=sorted(PHYSICAL_BUILDERS))
def test_algorithm_plan_has_no_errors(name):
    report = analyze_physical(PHYSICAL_BUILDERS[name]())
    assert not report.has_errors(), f"{name}:\n{report.format()}"


def _lineitem_session():
    cluster = Cluster(3)
    cluster.create_table(
        "lineitem",
        ["orderkey:Integer", "linenumber:Integer", "quantity:Integer",
         "extendedprice:Double", "discount:Double", "tax:Double"],
        lineitem(60), None)
    return RQLSession(cluster)


def _graph_session():
    cluster = Cluster(3)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         dbpedia_like(60, avg_out_degree=3, seed=7),
                         "srcId")
    return RQLSession(cluster)


RQL_WORKLOADS = {
    "fig04_simple_agg":
        "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
    "ablation_groupby":
        "SELECT linenumber, sum(tax), count(*) FROM lineitem "
        "GROUP BY linenumber",
    "ablation_projection":
        "SELECT orderkey, quantity * 2 AS dbl FROM lineitem "
        "WHERE quantity > 25",
}


@pytest.mark.parametrize("name", sorted(RQL_WORKLOADS),
                         ids=sorted(RQL_WORKLOADS))
def test_lineitem_rql_plan_has_no_errors(name):
    session = _lineitem_session()
    report = session.analyze(RQL_WORKLOADS[name])
    assert not report.has_errors(), f"{name}:\n{report.format()}"


def test_pagerank_rql_plan_has_no_errors():
    session = _graph_session()
    session.register(PRAgg(tol=0.0))
    report = session.analyze(PAGERANK_RQL)
    assert not report.has_errors(), report.format()


def test_sssp_rql_plan_has_no_errors():
    session = _graph_session()
    session.cluster.create_table(
        "start", ["v:Integer", "parent:Integer", "dist:Double"],
        [(0, -1, 0.0)], "v")
    session.register(SPAgg())
    session.register(MonotoneMinDist)
    report = session.analyze(SSSP_RQL, fixpoint_handler="MonotoneMinDist")
    assert not report.has_errors(), report.format()


def test_kmeans_rql_plan_has_no_errors():
    points = geo_points(40, n_clusters=3, seed=55, spread=0.7)
    centroids = sample_centroids(points, 3, seed=56)
    cluster = Cluster(3)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, None)
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    session = RQLSession(cluster)
    session.register(KMAgg)
    session.register(CentroidAvg, name="CentroidAvg")
    report = session.analyze(KMEANS_RQL)
    assert not report.has_errors(), report.format()


def test_unoptimized_session_plans_also_pass():
    """optimize=False sessions lower raw compiler output; the analyzer
    checks the exchange-completed tree the lowering would build."""
    cluster = Cluster(3)
    cluster.create_table(
        "lineitem",
        ["orderkey:Integer", "linenumber:Integer", "quantity:Integer",
         "extendedprice:Double", "discount:Double", "tax:Double"],
        lineitem(60), None)
    session = RQLSession(cluster, optimize=False)
    report = session.analyze(RQL_WORKLOADS["ablation_groupby"])
    assert not report.has_errors(), report.format()
