"""Delta-rule correctness of the built-in aggregates.

The central invariant (property-tested below): folding any legal sequence of
insert/delete/replace deltas through an aggregator's ``agg_state`` yields the
same ``agg_result`` as recomputing the aggregate over the final multiset.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import delete, insert, replace, update
from repro.common.errors import UDFError
from repro.udf.builtins import (
    ArgMax,
    ArgMin,
    Avg,
    AvgFinal,
    CollectList,
    Count,
    Max,
    Min,
    Sum,
)


def run(agg, ops):
    """Fold (delta, value, old_value) triples through an aggregator."""
    state = agg.init_state()
    for delta, value, old in ops:
        state = agg.agg_state(state, delta, value, old)
    return agg.agg_result(state)


def fold_values(agg, values):
    return run(agg, [(insert((v,)), v, None) for v in values])


class TestSum:
    def test_insert_delete(self):
        assert run(Sum(), [(insert((3,)), 3, None), (insert((4,)), 4, None),
                           (delete((3,)), 3, None)]) == 4

    def test_empty_group_is_null(self):
        agg = Sum()
        assert run(agg, [(insert((3,)), 3, None), (delete((3,)), 3, None)]) is None

    def test_replace(self):
        assert run(Sum(), [(insert((3,)), 3, None),
                           (replace((3,), (10,)), 10, 3)]) == 10

    def test_update_adjusts(self):
        assert run(Sum(), [(insert((3,)), 3, None),
                           (update((0,), payload=2.5), None, None)]) == 5.5

    def test_update_rejects_non_numeric(self):
        with pytest.raises(UDFError):
            run(Sum(), [(update((0,), payload="x"), None, None)])

    def test_null_inputs_skipped(self):
        assert run(Sum(), [(insert((None,)), None, None),
                           (insert((2,)), 2, None)]) == 2

    def test_multiply_compensation(self):
        assert Sum.multiply(5, 3) == 15
        assert Sum.multiply(None, 3) is None


class TestCount:
    def test_count_star_counts_nulls(self):
        assert fold_values(Count(count_star=True), [1, None, 2]) == 3

    def test_count_expr_skips_nulls(self):
        assert fold_values(Count(count_star=False), [1, None, 2]) == 2

    def test_delete(self):
        assert run(Count(), [(insert((1,)), 1, None),
                             (delete((1,)), 1, None)]) == 0

    def test_replace_null_transitions(self):
        agg = Count(count_star=False)
        assert run(agg, [(insert((1,)), 1, None),
                         (replace((1,), (None,)), None, 1)]) == 0

    def test_final_aggregator_sums_partials(self):
        assert isinstance(Count().final_aggregator(), Sum)


class TestMinMax:
    def test_delete_of_minimum_reveals_next(self):
        """The paper's motivating subtlety for buffered min state."""
        agg = Min()
        state = agg.init_state()
        for v in (5, 3, 8):
            state = agg.agg_state(state, insert((v,)), v)
        assert agg.agg_result(state) == 3
        state = agg.agg_state(state, delete((3,)), 3)
        assert agg.agg_result(state) == 5

    def test_max(self):
        assert fold_values(Max(), [5, 3, 8]) == 8

    def test_duplicates_survive_one_delete(self):
        agg = Min()
        state = agg.init_state()
        for v in (2, 2, 7):
            state = agg.agg_state(state, insert((v,)), v)
        state = agg.agg_state(state, delete((2,)), 2)
        assert agg.agg_result(state) == 2

    def test_delete_absent_raises(self):
        agg = Min()
        with pytest.raises(UDFError):
            agg.agg_state(agg.init_state(), delete((1,)), 1)

    def test_update_rejected(self):
        with pytest.raises(UDFError):
            run(Min(), [(update((1,), payload=1), 1, None)])

    def test_empty_is_null(self):
        assert fold_values(Min(), []) is None


class TestAvg:
    def test_basic(self):
        assert fold_values(Avg(), [2, 4]) == 3.0

    def test_delete(self):
        assert run(Avg(), [(insert((2,)), 2, None), (insert((4,)), 4, None),
                           (delete((4,)), 4, None)]) == 2.0

    def test_pre_final_composition_matches_direct(self):
        """avg == final(union of partial (sum,count) pairs) — Section 3.3."""
        groups = [[1.0, 2.0, 3.0], [10.0], [4.0, 4.0]]
        direct = fold_values(Avg(), [v for g in groups for v in g])
        pre = Avg().pre_aggregator()
        partials = [fold_values(pre, g) for g in groups]
        final = Avg().final_aggregator()
        assert isinstance(final, AvgFinal)
        composed = fold_values(final, partials)
        assert composed == pytest.approx(direct)

    def test_empty_is_null(self):
        assert fold_values(Avg(), []) is None


class TestArgMinMax:
    def test_argmin_returns_identifier(self):
        pairs = [("a", 5.0), ("b", 2.0), ("c", 9.0)]
        assert fold_values(ArgMin(), pairs) == ("b", 2.0)

    def test_argmax(self):
        pairs = [("a", 5.0), ("b", 2.0)]
        assert fold_values(ArgMax(), pairs) == ("a", 5.0)

    def test_tie_breaks_by_id(self):
        pairs = [("z", 1.0), ("a", 1.0)]
        assert fold_values(ArgMin(), pairs) == ("a", 1.0)

    def test_delete_of_winner(self):
        agg = ArgMin()
        state = agg.init_state()
        for p in [(1, 5.0), (2, 2.0)]:
            state = agg.agg_state(state, insert(p), p)
        state = agg.agg_state(state, delete((2, 2.0)), (2, 2.0))
        assert agg.agg_result(state) == (1, 5.0)


class TestCollect:
    def test_collects_sorted(self):
        assert fold_values(CollectList(), [3, 1, 2]) == (1, 2, 3)

    def test_delete_removes_one_occurrence(self):
        agg = CollectList()
        state = agg.init_state()
        for v in (1, 1, 2):
            state = agg.agg_state(state, insert((v,)), v)
        state = agg.agg_state(state, delete((1,)), 1)
        assert agg.agg_result(state) == (1, 2)

    def test_delete_absent_raises(self):
        agg = CollectList()
        with pytest.raises(UDFError):
            agg.agg_state(agg.init_state(), delete((1,)), 1)


# ---------------------------------------------------------------------------
# Property: delta folding == recomputation over the surviving multiset.
# ---------------------------------------------------------------------------

values = st.integers(min_value=-100, max_value=100)


@st.composite
def delta_script(draw):
    """A legal history: inserts, deletes of live values, replaces."""
    live = []
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0 or not live:
            v = draw(values)
            ops.append((insert((v,)), v, None))
            live.append(v)
        elif choice == 1:
            v = live.pop(draw(st.integers(min_value=0, max_value=len(live) - 1)))
            ops.append((delete((v,)), v, None))
        else:
            idx = draw(st.integers(min_value=0, max_value=len(live) - 1))
            old = live[idx]
            new = draw(values)
            live[idx] = new
            ops.append((replace((old,), (new,)), new, old))
    return ops, live


@pytest.mark.parametrize("agg_cls,reference", [
    (Sum, lambda vs: sum(vs) if vs else None),
    (Count, lambda vs: len(vs)),
    (Min, lambda vs: min(vs) if vs else None),
    (Max, lambda vs: max(vs) if vs else None),
    (Avg, lambda vs: sum(vs) / len(vs) if vs else None),
    (CollectList, lambda vs: tuple(sorted(vs)) if vs else None),
])
@given(script=delta_script())
def test_delta_folding_equals_recomputation(agg_cls, reference, script):
    ops, survivors = script
    got = run(agg_cls(), ops)
    expected = reference(survivors)
    if isinstance(expected, float):
        assert got == pytest.approx(expected)
    else:
        assert got == expected
