"""Metrics registry primitives, naming scheme, and memo-cache exposure."""

import pytest

from repro.bench.wallclock import _pagerank_setup
from repro.cluster import Cluster
from repro.common import insert, update
from repro.obs import MetricsRegistry, ObsContext
from repro.operators import (
    ExchangeReceiver,
    ExecContext,
    GroupBy,
    RehashSender,
)
from repro.runtime.executor import ExecOptions
from repro.udf import AggregateSpec, Sum

from helpers import Capture


class TestPrimitives:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc()
        c.inc(4)
        assert reg.counter("a.b").value == 5  # get-or-create returns same

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.5)
        assert reg.gauge("g").value == 3.5

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 6.0):
            h.record(v)
        assert h.count == 3
        assert h.total == 9.0
        assert h.min == 1.0
        assert h.max == 6.0
        assert h.mean == pytest.approx(3.0)
        assert h.snapshot()["mean"] == pytest.approx(3.0)

    def test_series_preserves_order(self):
        reg = MetricsRegistry()
        s = reg.series("s")
        s.append(0, 10)
        s.append(1, 7)
        assert s.points == [(0, 10), (1, 7)]

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_names_and_snapshot_by_prefix(self):
        reg = MetricsRegistry()
        reg.counter("op.n0.Scan#0.calls").inc()
        reg.counter("net.exchange.x.bytes").inc(64)
        assert reg.names("op.") == ["op.n0.Scan#0.calls"]
        snap = reg.snapshot("net.")
        assert snap == {"net.exchange.x.bytes": 64}


class TestNamingScheme:
    def test_query_populates_expected_namespaces(self):
        obs = ObsContext()
        _pagerank_setup(80, 4.0, 3, 5)(ExecOptions(batch=True, obs=obs))
        names = obs.registry.names()
        prefixes = {"op.", "net.exchange.", "stratum.", "fixpoint.",
                    "memo."}
        for prefix in prefixes:
            assert any(n.startswith(prefix) for n in names), prefix
        # per-operator metrics carry node and instance ids
        assert any(n.startswith("op.n0.") and n.endswith(".sim_seconds")
                   for n in names)
        # stratum series have one point per stratum
        seconds = obs.registry.series("stratum.seconds")
        assert [i for i, _ in seconds.points] == list(
            range(len(seconds.points)))


def _wire_rehash(memo_cap):
    cluster = Cluster(3)
    snapshot = cluster.ring.snapshot()
    for node in cluster.node_ids():
        ctx = ExecContext(cluster.worker(node), cluster=cluster,
                          snapshot=snapshot)
        recv = ExchangeReceiver("x", expected_senders=1)
        sink = Capture()
        sink.add_input(recv)
        recv.open(ctx)
        sink.open(ctx)
    sender_ctx = ExecContext(cluster.worker(0), cluster=cluster,
                             snapshot=snapshot, batch=True)
    sender = RehashSender("x", key_fn=lambda r: (r[0],), batch_size=8)
    sender.memo_cap = memo_cap  # instance override pins the cap
    sender.open(sender_ctx)
    return cluster, sender


class TestRehashMemoAccounting:
    def test_hits_and_misses(self):
        cluster, sender = _wire_rehash(memo_cap=1000)
        # The memo is keyed by the whole row: 4 distinct rows, seen 5x each.
        rows = [insert((i % 4, i % 4)) for i in range(20)]
        sender.push_batch(rows)
        assert sender.memo_misses == 4
        assert sender.memo_hits == 16

    def test_eviction_at_cap(self):
        cluster, sender = _wire_rehash(memo_cap=4)
        # 10 distinct rows: the memo wipes every time it reaches 4 entries.
        sender.push_batch([insert((i, 0)) for i in range(10)])
        assert sender.memo_misses == 10
        assert sender.memo_hits == 0
        # evictions count entries dropped: wiped at 4 twice (8 entries),
        # leaving 2 resident.
        assert sender.memo_evictions == 8
        assert len(sender._dst_cache) == 2

    def test_repeated_rows_hit_after_eviction_rebuild(self):
        cluster, sender = _wire_rehash(memo_cap=4)
        batch = [insert((i, 0)) for i in range(3)]
        sender.push_batch(batch)
        sender.push_batch(batch)
        assert sender.memo_misses == 3
        assert sender.memo_hits == 3
        assert sender.memo_evictions == 0


def _wire_groupby(key_memo_cap):
    gb = GroupBy(key_fn=lambda r: (r[0],),
                 specs=[AggregateSpec(Sum(), arg=lambda r: r[1])])
    gb.key_memo_cap = key_memo_cap
    sink = Capture()
    sink.add_input(gb)
    from repro.cluster import CostModel, Worker
    ctx = ExecContext(Worker(0, CostModel()), batch=True)
    gb.open(ctx)
    sink.open(ctx)
    return gb


class TestGroupByMemoAccounting:
    def test_hits_and_misses(self):
        gb = _wire_groupby(key_memo_cap=1000)
        gb.push_batch([insert((1, 1.0)) for _ in range(5)]
                      + [insert((2, 1.0))])
        assert gb.memo_misses == 2
        assert gb.memo_hits == 4

    def test_eviction_at_cap(self):
        gb = _wire_groupby(key_memo_cap=3)
        gb.push_batch([insert((i, 1.0)) for i in range(7)])
        assert gb.memo_misses == 7
        # wiped at 3 entries twice -> 6 evicted, 1 resident
        assert gb.memo_evictions == 6
        assert len(gb._key_memo) == 1

    def test_update_deltas_use_memo(self):
        gb = _wire_groupby(key_memo_cap=1000)
        gb.push_batch([update((1,), payload=0.5) for _ in range(4)])
        assert gb.memo_misses == 1
        assert gb.memo_hits == 3


class TestMemoRegistryExposure:
    def test_memo_counters_published(self):
        obs = ObsContext()
        _pagerank_setup(80, 4.0, 3, 5)(ExecOptions(batch=True, obs=obs))
        reg = obs.registry
        rehash = [n for n in reg.names("memo.rehash.")
                  if n.endswith(".hits")]
        groupby = [n for n in reg.names("memo.groupby.")
                   if n.endswith(".hits")]
        assert rehash and groupby
        # per-tuple mode never touches the batch memos: counters stay 0
        # but the hit/miss split must cover every memoized lookup.
        for name in rehash + groupby:
            base = name[:-len(".hits")]
            hits = reg.counter(f"{base}.hits").value
            misses = reg.counter(f"{base}.misses").value
            assert hits + misses > 0
            assert hits >= misses  # group keys repeat heavily in PageRank
