"""Property-based tests for the fixpoint operator's refinement semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common import DeltaOp, delete, insert
from repro.common.deltas import apply_deltas
from repro.operators import Fixpoint

from helpers import Capture, wire


def run_keyed(deltas):
    fp = Fixpoint(key_fn=lambda r: (r[0],), semantics="keyed")
    wire(fp, Capture())
    admitted = []
    for d in deltas:
        fp.receive(d)
        admitted.extend(fp.take_pending())
    return fp, admitted


keys = st.integers(min_value=0, max_value=5)
values = st.integers(min_value=0, max_value=5)
rows = st.tuples(keys, values)


@st.composite
def keyed_script(draw):
    ops = []
    state = {}
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        row = draw(rows)
        if state and draw(st.booleans()) and draw(st.booleans()):
            key = draw(st.sampled_from(sorted(state)))
            ops.append(delete((key, state[key])))
            del state[key]
        else:
            ops.append(insert(row))
            state[row[0]] = row[1]
    return ops, state


class TestKeyedRefinementProperties:
    @given(keyed_script())
    def test_state_equals_last_write_per_key(self, script):
        """The while-relation is always the last-writer-wins map."""
        ops, expected = script
        fp, _ = run_keyed(ops)
        assert {k[0]: v[1] for k, v in fp.state.items()} == expected

    @given(keyed_script())
    def test_admitted_deltas_replay_to_state(self, script):
        """Applying the admitted delta stream to an empty set reproduces
        exactly the fixpoint's final relation — the invariant incremental
        checkpointing relies on (Section 4.3)."""
        ops, _ = script
        fp, admitted = run_keyed(ops)
        materialized = apply_deltas(set(), admitted)
        assert materialized == set(fp.state.values())

    @given(st.lists(rows, max_size=40))
    def test_idempotence_of_duplicate_inserts(self, row_list):
        """Re-inserting the current row for a key never admits anything:
        duplicate derivations are eliminated (Section 4.2)."""
        fp, _ = run_keyed([insert(r) for r in row_list])
        fp.take_pending()
        for row in set(fp.state.values()):
            fp.receive(insert(row))
        assert fp.take_pending() == []

    @given(st.lists(rows, min_size=1, max_size=40))
    def test_admission_count_bounded_by_input(self, row_list):
        fp, admitted = run_keyed([insert(r) for r in row_list])
        assert len(admitted) <= len(row_list)


class TestSetSemanticsProperties:
    @given(st.lists(rows, max_size=40))
    def test_set_admits_each_distinct_row_once(self, row_list):
        fp = Fixpoint(key_fn=None, semantics="set")
        wire(fp, Capture())
        for r in row_list:
            fp.receive(insert(r))
        admitted = fp.take_pending()
        assert len(admitted) == len(set(row_list))
        assert {d.row for d in admitted} == set(row_list)

    @given(st.lists(rows, max_size=40))
    def test_bag_admits_everything(self, row_list):
        fp = Fixpoint(key_fn=None, semantics="bag")
        wire(fp, Capture())
        for r in row_list:
            fp.receive(insert(r))
        assert len(fp.take_pending()) == len(row_list)
