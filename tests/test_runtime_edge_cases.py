"""Executor edge cases: empty inputs, unions, deletes, options."""

import pytest

from repro.cluster import Cluster
from repro.common import insert
from repro.operators import make_key_fn
from repro.runtime import (
    ExecOptions,
    PFeedback,
    PFilter,
    PFixpoint,
    PGroupBy,
    PJoin,
    PProject,
    PRehash,
    PScan,
    PUnion,
    PhysicalPlan,
    QueryExecutor,
)
from repro.udf import AggregateSpec, Sum


class TestEmptyInputs:
    def test_empty_table_scan(self):
        cluster = Cluster(3)
        cluster.create_table("t", ["id:Integer"], [], "id")
        result = QueryExecutor(cluster).execute(PhysicalPlan(PScan("t")))
        assert result.rows == []
        assert result.metrics.num_iterations == 1

    def test_empty_aggregation(self):
        cluster = Cluster(2)
        cluster.create_table("t", ["id:Integer", "v:Integer"], [], "id")
        plan = PhysicalPlan(PGroupBy(
            key_fn=lambda r: (r[0],),
            specs_factory=lambda: [AggregateSpec(Sum(), arg=lambda r: r[1])],
            children=(PScan("t"),)))
        result = QueryExecutor(cluster).execute(plan)
        assert result.rows == []

    def test_filter_eliminating_everything(self):
        cluster = Cluster(2)
        cluster.create_table("t", ["id:Integer"], [(1,), (2,)], "id")
        plan = PhysicalPlan(PFilter(predicate=lambda r: False,
                                    children=(PScan("t"),)))
        result = QueryExecutor(cluster).execute(plan)
        assert result.rows == []

    def test_recursion_with_empty_base_terminates_immediately(self):
        cluster = Cluster(2)
        cluster.create_table("edges", ["s:Integer", "d:Integer"],
                             [(0, 1)], "s")
        cluster.create_table("start", ["v:Integer"], [], "v")
        vkey = lambda r: (r[0],)
        plan = PhysicalPlan(PFixpoint(
            key_fn=vkey, semantics="set",
            children=(
                PRehash(key_fn=vkey, children=(PScan("start"),)),
                PRehash(key_fn=vkey, children=(
                    PProject(row_fn=lambda r: (r[2],), children=(
                        PJoin(left_key=vkey, right_key=vkey,
                              handler_side=None,
                              children=(PFeedback(), PScan("edges"))),
                    )),
                )),
            )))
        result = QueryExecutor(cluster).execute(plan)
        assert result.rows == []
        assert result.metrics.num_iterations == 1


class TestUnionPlans:
    def test_union_of_two_scans(self):
        cluster = Cluster(3)
        cluster.create_table("a", ["x:Integer"], [(1,), (2,)], "x")
        cluster.create_table("b", ["x:Integer"], [(2,), (3,)], "x")
        plan = PhysicalPlan(PUnion(children=(PScan("a"), PScan("b"))))
        result = QueryExecutor(cluster).execute(plan)
        assert sorted(result.rows) == [(1,), (2,), (2,), (3,)]  # bag union

    def test_union_feeding_aggregate(self):
        cluster = Cluster(2)
        cluster.create_table("a", ["x:Integer"], [(i,) for i in range(5)],
                             "x")
        cluster.create_table("b", ["x:Integer"], [(i,) for i in range(5)],
                             "x")
        plan = PhysicalPlan(PGroupBy(
            key_fn=lambda r: (),
            specs_factory=lambda: [AggregateSpec(Sum(), arg=lambda r: r[0])],
            children=(PRehash(key_fn=lambda r: (), children=(
                PUnion(children=(PScan("a"), PScan("b"))),)),)))
        result = QueryExecutor(cluster).execute(plan)
        assert result.rows == [(20,)]


class TestOptions:
    def test_collect_result_false_skips_rows(self):
        cluster = Cluster(2)
        cluster.create_table("t", ["id:Integer"], [(i,) for i in range(10)],
                             "id")
        opts = ExecOptions(collect_result=False)
        result = QueryExecutor(cluster, opts).execute(
            PhysicalPlan(PScan("t")))
        assert result.rows == []
        assert result.metrics.total_seconds() > 0

    def test_checkpointing_disabled_sends_less(self):
        cluster1 = Cluster(3)
        cluster1.create_table("edges", ["s:Integer", "d:Integer"],
                              [(i, i + 1) for i in range(20)], "s")
        cluster1.create_table("start", ["v:Integer"], [(0,)], "v")
        vkey = lambda r: (r[0],)

        def reach_plan():
            return PhysicalPlan(PFixpoint(
                key_fn=vkey, semantics="set",
                children=(
                    PRehash(key_fn=vkey, children=(PScan("start"),)),
                    PRehash(key_fn=vkey, children=(
                        PProject(row_fn=lambda r: (r[2],), children=(
                            PJoin(left_key=vkey, right_key=vkey,
                                  handler_side=None,
                                  children=(PFeedback(), PScan("edges"))),
                        )),
                    )),
                )))

        with_ckpt = QueryExecutor(cluster1).execute(reach_plan())
        cluster2 = Cluster(3)
        cluster2.create_table("edges", ["s:Integer", "d:Integer"],
                              [(i, i + 1) for i in range(20)], "s")
        cluster2.create_table("start", ["v:Integer"], [(0,)], "v")
        without = QueryExecutor(
            cluster2, ExecOptions(checkpointing=False)).execute(reach_plan())
        assert sorted(with_ckpt.rows) == sorted(without.rows)
        assert without.metrics.total_bytes() < with_ckpt.metrics.total_bytes()

    def test_result_rows_metric(self):
        cluster = Cluster(2)
        cluster.create_table("t", ["id:Integer"], [(i,) for i in range(7)],
                             "id")
        result = QueryExecutor(cluster).execute(PhysicalPlan(PScan("t")))
        assert result.metrics.result_rows == 7


class TestDeletePropagationToSink:
    def test_groupby_delete_reaches_result(self):
        """A group emptied in a later stratum must vanish from the final
        result (deletion flows through collect to the requestor)."""
        from repro.common.deltas import Delta, DeltaOp
        from repro.operators import LocalSource
        from repro.runtime.plan import PNode
        import dataclasses

        # Simulate via direct operator wiring inside one worker.
        from repro.cluster import Cluster as C
        from repro.operators import ExecContext, GroupBy, Collect, ResultSink
        from repro.common.punctuation import Punctuation

        cluster = C(1)
        snapshot = cluster.ring.snapshot()
        ctx = ExecContext(cluster.worker(0), cluster=cluster,
                          snapshot=snapshot)
        sink = ResultSink(cluster.network, exchange="c", expected_workers=1)
        collect = Collect(exchange="c")
        gb = GroupBy(key_fn=lambda r: (r[0],),
                     specs=[AggregateSpec(Sum(), arg=lambda r: r[1])])
        collect.add_input(gb)
        gb.open(ctx)
        collect.open(ctx)

        gb.receive(insert(("a", 5)))
        gb.on_punctuation(Punctuation.end_of_stratum(0))
        from repro.common import delete

        gb.receive(delete(("a", 5)))
        gb.on_punctuation(Punctuation.end_of_query(1))
        cluster.network.drain()
        assert sink.rows() == []
        assert sink.done
