"""Tests for the Hadoop/HaLoop simulator and the REX wrap mode."""

import pytest

from repro.algorithms import (
    kmeans_reference,
    pagerank_reference,
    run_pagerank,
    sssp_reference,
)
from repro.cluster import Cluster
from repro.datasets import (
    dbpedia_like,
    geo_points,
    lineitem,
    sample_centroids,
)
from repro.hadoop import (
    DFSDataset,
    HadoopEngine,
    hadoop_kmeans,
    hadoop_pagerank,
    hadoop_simple_agg,
    hadoop_sssp,
    rex_wrap_pagerank,
    rex_wrap_simple_agg,
    simple_agg_job,
)

EDGES = dbpedia_like(250, avg_out_degree=5, seed=23)


class TestDFSDataset:
    def test_from_records_by_key_consistent(self):
        ds = DFSDataset.from_records("t", [(i, i) for i in range(50)],
                                     [0, 1, 2])
        assert ds.num_records() == 50
        again = DFSDataset.from_records("t", [(i, i) for i in range(50)],
                                        [0, 1, 2])
        assert ds.partitions == again.partitions

    def test_round_robin_blocks(self):
        ds = DFSDataset.from_records("t", [(i, i) for i in range(9)],
                                     [0, 1, 2], by_key=False)
        assert all(len(ds.partition(n)) == 3 for n in (0, 1, 2))

    def test_as_dict(self):
        ds = DFSDataset.from_records("t", [(1, "a"), (2, "b")], [0])
        assert ds.as_dict() == {1: "a", 2: "b"}


class TestSimpleAggJob:
    def test_matches_direct_computation(self):
        rows = lineitem(500)
        cluster = Cluster(4)
        (total, count), metrics = hadoop_simple_agg(cluster, rows)
        kept = [r for r in rows if r[1] > 1]
        assert count == len(kept)
        assert total == pytest.approx(sum(r[5] for r in kept))
        assert metrics.total_seconds() > cluster.cost.hadoop_job_startup

    def test_rex_wrap_same_answer(self):
        rows = lineitem(500)
        cluster = Cluster(4)
        cluster.create_table(
            "lineitem",
            ["orderkey:Integer", "linenumber:Integer", "quantity:Integer",
             "extendedprice:Double", "discount:Double", "tax:Double"],
            [(r[0], r[1], r[2], r[3], r[4], r[5]) for r in rows], None)
        # The wrap plan consumes columns (orderkey, linenumber, tax) via
        # the arg extractor matching the mapper's expectations.
        wrap_cluster = Cluster(4)
        wrap_cluster.create_table(
            "lineitem",
            ["orderkey:Integer", "linenumber:Integer", "quantity:Integer",
             "extendedprice:Double", "discount:Double", "tax:Double"],
            rows, None)
        (total, count), wrap_m = rex_wrap_simple_agg(wrap_cluster)
        kept = [r for r in rows if r[1] > 1]
        assert count == len(kept)
        assert total == pytest.approx(sum(r[5] for r in kept))

    def test_wrap_faster_than_hadoop(self):
        """Figure 4: REX wrap beats Hadoop (no startup, no sort-shuffle)."""
        rows = lineitem(2000)
        h_cluster = Cluster(4)
        _, hadoop_m = hadoop_simple_agg(h_cluster, rows)
        w_cluster = Cluster(4)
        w_cluster.create_table(
            "lineitem",
            ["orderkey:Integer", "linenumber:Integer", "quantity:Integer",
             "extendedprice:Double", "discount:Double", "tax:Double"],
            rows, None)
        _, wrap_m = rex_wrap_simple_agg(w_cluster)
        assert wrap_m.total_seconds() < hadoop_m.total_seconds()


class TestHadoopPageRank:
    def test_matches_reference(self):
        cluster = Cluster(3)
        scores, _ = hadoop_pagerank(cluster, EDGES, iterations=40)
        expected = pagerank_reference(EDGES)
        for v in expected:
            assert scores[v] == pytest.approx(expected[v], rel=1e-3), v

    def test_haloop_same_answer_less_time(self):
        c1 = Cluster(3)
        s1, m1 = hadoop_pagerank(c1, EDGES, iterations=10, haloop=False)
        c2 = Cluster(3)
        s2, m2 = hadoop_pagerank(c2, EDGES, iterations=10, haloop=True)
        assert s1 == s2
        assert m2.total_seconds() < m1.total_seconds()

    def test_first_iteration_not_discounted_for_haloop(self):
        cluster = Cluster(3)
        _, m = hadoop_pagerank(cluster, EDGES, iterations=5, haloop=True)
        per_iter = m.per_iteration_seconds()
        assert per_iter[0] > per_iter[1]  # cache built during iteration 1

    def test_per_iteration_time_flat_for_hadoop(self):
        """Hadoop re-processes everything: late iterations cost like early
        ones (Figure 6b's flat lines)."""
        cluster = Cluster(3)
        _, m = hadoop_pagerank(cluster, EDGES, iterations=8)
        per_iter = m.per_iteration_seconds()
        assert per_iter[-1] == pytest.approx(per_iter[1], rel=0.25)


class TestHadoopSSSP:
    def test_matches_bfs(self):
        cluster = Cluster(3)
        dists, _ = hadoop_sssp(cluster, EDGES, source=0)
        assert dists == {v: float(d)
                         for v, d in sssp_reference(EDGES, 0).items()}

    def test_haloop_cheaper(self):
        c1 = Cluster(3)
        _, m1 = hadoop_sssp(c1, EDGES, source=0, haloop=False)
        c2 = Cluster(3)
        _, m2 = hadoop_sssp(c2, EDGES, source=0, haloop=True)
        assert m2.total_seconds() < m1.total_seconds()

    def test_frontier_tracked_as_delta(self):
        cluster = Cluster(3)
        _, m = hadoop_sssp(cluster, EDGES, source=0)
        assert m.delta_series()[-1] == 0  # frontier empties


class TestHadoopKMeans:
    def test_matches_lloyd(self):
        points = geo_points(200, n_clusters=3, seed=31, spread=0.6)
        centroids = sample_centroids(points, 3, seed=32)
        cluster = Cluster(3)
        got, _ = hadoop_kmeans(cluster, points, centroids)
        expected, _, _ = kmeans_reference(points, centroids)
        for cid, (x, y) in got.items():
            assert x == pytest.approx(expected[cid][0], abs=1e-6)
            assert y == pytest.approx(expected[cid][1], abs=1e-6)

    def test_haloop_no_advantage_for_kmeans(self):
        """The paper: no immutable relation -> HaLoop ~ Hadoop."""
        points = geo_points(150, n_clusters=3, seed=33)
        centroids = sample_centroids(points, 3, seed=34)
        c1 = Cluster(3)
        _, m1 = hadoop_kmeans(c1, points, centroids, haloop=False)
        c2 = Cluster(3)
        _, m2 = hadoop_kmeans(c2, points, centroids, haloop=True)
        assert m2.total_seconds() == pytest.approx(m1.total_seconds(),
                                                   rel=0.01)


class TestRexWrapPageRank:
    def test_same_scores_as_native_rex(self):
        iterations = 12
        c1 = Cluster(3)
        c1.create_table("graph", ["srcId:Integer", "destId:Integer"],
                        EDGES, "srcId")
        wrap_scores, wrap_m = rex_wrap_pagerank(c1, iterations)
        c2 = Cluster(3)
        c2.create_table("graph", ["srcId:Integer", "destId:Integer"],
                        EDGES, "srcId")
        native_scores, _ = run_pagerank(c2, mode="nodelta",
                                        max_strata=iterations)
        for v in native_scores:
            assert wrap_scores[v] == pytest.approx(native_scores[v], rel=1e-9)

    def test_wrap_slower_than_delta_but_faster_than_hadoop(self):
        """Figure 6a ordering: Hadoop > wrap > ... > REX Δ."""
        c3 = Cluster(3)
        c3.create_table("graph", ["srcId:Integer", "destId:Integer"],
                        EDGES, "srcId")
        _, delta_m = run_pagerank(c3, mode="delta", tol=0.01)
        iterations = delta_m.num_iterations
        c1 = Cluster(3)
        c1.create_table("graph", ["srcId:Integer", "destId:Integer"],
                        EDGES, "srcId")
        _, wrap_m = rex_wrap_pagerank(c1, iterations)
        c2 = Cluster(3)
        _, hadoop_m = hadoop_pagerank(c2, EDGES, iterations=iterations)
        # At unit-test scale stratum overhead dominates seconds, so the
        # delta-vs-wrap claim is asserted on work done; the benchmark-scale
        # runs in benchmarks/ assert it on simulated seconds.
        assert delta_m.total_tuples() < wrap_m.total_tuples()
        assert wrap_m.total_seconds() < hadoop_m.total_seconds()
