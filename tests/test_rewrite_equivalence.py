"""Property tests: the lineage-directed rewrite pass is semantics-preserving.

``ExecOptions(rewrite=True)``'s contract mirrors fusion's: on the
benchmark workloads — where no rewrite is licensed (their exchanges
carry δ updates and their plans have no filters) — canonical result
rows AND the full ``QueryMetrics.fingerprint`` are bit-identical with
the pass on and off, across the fuse × absint × sanitize matrix.  On a
deliberately wide workload where both rewrites *do* fire (filter
pushdown below the exchange, projection narrowing through it), the
result rows are identical while bytes on the wire strictly drop.
Legality is then checked directly: impure predicates and
non-insert-only streams must make the pass decline.
"""

import pytest

from repro.algorithms.kmeans import kmeans_plan
from repro.algorithms.pagerank import pagerank_plan
from repro.algorithms.sssp import make_start_table, sssp_plan
from repro.cluster import Cluster
from repro.common.deltas import DeltaOp
from repro.datasets import dbpedia_like, geo_points, sample_centroids
from repro.optimizer.rewrite import rewrite_plan, rewrite_report
from repro.runtime import (
    ExecOptions,
    PFilter,
    PProject,
    PRehash,
    PScan,
    PhysicalPlan,
    QueryExecutor,
)
from repro.runtime.plan import (
    PApply,
    PCollect,
    PFeedback,
    PFixpoint,
    PJoin,
)


def _pagerank():
    cluster = Cluster(4)
    edges = dbpedia_like(120, avg_out_degree=4.0, seed=11)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    return cluster, pagerank_plan(mode="delta", tol=0.01), dict(
        max_strata=60, feedback_mode="delta")


def _sssp():
    cluster = Cluster(4)
    edges = dbpedia_like(120, avg_out_degree=4.0, seed=11)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId")
    make_start_table(cluster, edges[0][0])
    return cluster, sssp_plan(), dict(max_strata=200)


def _kmeans():
    cluster = Cluster(4)
    points = geo_points(150, n_clusters=4, seed=11)
    centroids = sample_centroids(points, 4, seed=12)
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, "pid")
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    return cluster, kmeans_plan(), dict(max_strata=120)


WORKLOADS = [("pagerank", _pagerank), ("sssp", _sssp), ("kmeans", _kmeans)]


def _observe(builder, rewrite, fuse=True, absint=True, sanitize="off"):
    cluster, plan, extra = builder()
    options = ExecOptions(rewrite=rewrite, fuse=fuse, absint=absint,
                          sanitize=sanitize, **extra)
    executor = QueryExecutor(cluster, options)
    result = executor.execute(plan)
    return sorted(result.rows), result.metrics.fingerprint(), executor


@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_benchmark_workload_rewrite_matrix(name, builder):
    """Rewrite on/off is observationally invisible on the benchmark
    workloads at every point of the fuse × absint × sanitize matrix."""
    for fuse in (True, False):
        for absint in (True, False):
            for sanitize in ("off", "full"):
                rows_on, fp_on, _ = _observe(
                    builder, True, fuse, absint, sanitize)
                rows_off, fp_off, _ = _observe(
                    builder, False, fuse, absint, sanitize)
                cfg = f"fuse={fuse}, absint={absint}, sanitize={sanitize}"
                assert rows_on == rows_off, f"{name}: rows diverge ({cfg})"
                assert fp_on == fp_off, (
                    f"{name}: fingerprint diverges ({cfg})")


@pytest.mark.parametrize("name,builder", WORKLOADS)
def test_benchmark_plans_license_no_rewrites(name, builder):
    """The benchmark plans offer nothing legal to rewrite (their
    exchanges carry δ updates), so the pass must return the tree
    unchanged — fingerprint identity above is earned, not vacuous."""
    cluster, plan, _ = builder()
    arity = {n: len(cluster.catalog.get(n).schema.fields)
             for n in cluster.catalog.names()}
    new_root, decisions = rewrite_plan(plan.root, table_arity=arity)
    assert new_root is plan.root
    assert not any(d.applied for d in decisions)


# -- a wide workload where both rewrites fire ---------------------------

def _vkey(row):
    return (row[0],)


def _even_payload(row):
    return row[1] % 2 == 0


def _second_col(row):
    return (row[1],)


N_WIDE = 120
WIDE_SCHEMA = ["src:Integer", "dst:Integer"] + \
    [f"p{i}:Double" for i in range(6)]


def _wide_rows():
    rows = []
    for i in range(N_WIDE):
        src = i % 40
        dst = (i * 7 + 3) % 40
        rows.append((src, dst) + tuple(float(i + k) for k in range(6)))
    return rows


def _wide_builder():
    """Reachability over 8-column edges: only (src, dst) matter, the six
    payload columns exist to be narrowed away at the exchange."""
    cluster = Cluster(4)
    # Partitioned by dst but joined on src: the rehash genuinely moves
    # rows across the wire, so narrowing it has observable byte cost.
    cluster.create_table("wide_edges", WIDE_SCHEMA, _wide_rows(), "dst")
    cluster.create_table("seeds", ["node:Integer"], [(0,)], "node")
    edges = PFilter.over(PRehash.by(PScan("wide_edges"), _vkey),
                         _even_payload)
    join = PJoin(left_key=_vkey, right_key=_vkey,
                 children=(edges, PFeedback()))
    recursive = PRehash.by(PProject.over(join, _second_col), _vkey)
    base = PRehash.by(PScan("seeds"), _vkey)
    root = PCollect(children=(
        PFixpoint(key_fn=_vkey, semantics="keyed",
                  children=(base, recursive)),))
    return cluster, PhysicalPlan(root), dict(max_strata=100)


def test_wide_workload_rewrites_fire_and_preserve_rows():
    rows_on, fp_on, ex_on = _observe(_wide_builder, rewrite=True)
    rows_off, fp_off, ex_off = _observe(_wide_builder, rewrite=False)
    assert rows_on == rows_off
    applied = [d for d in ex_on.rewrite_decisions if d.applied]
    kinds = {d.kind for d in applied}
    assert "filter-pushdown" in kinds
    assert "narrow-exchange" in kinds
    assert ex_off.rewrite_decisions == []
    # The narrowed exchange ships 2-column rows instead of 8-column ones
    # (fingerprint shape: (n_iter, ((secs, bytes, ...), ...), total)).
    bytes_on = sum(it[1] for it in fp_on[1])
    bytes_off = sum(it[1] for it in fp_off[1])
    assert bytes_on < bytes_off, (
        f"expected a wire-bytes win, got {bytes_on} vs {bytes_off}")


def test_wide_workload_matrix_rows_stable():
    """Rows stay identical across the full matrix even when the rewrite
    changes the wire traffic (fingerprints legitimately differ here)."""
    baseline = None
    for rewrite in (True, False):
        for fuse in (True, False):
            for sanitize in ("off", "full"):
                rows, _, _ = _observe(_wide_builder, rewrite, fuse,
                                      sanitize=sanitize)
                if baseline is None:
                    baseline = rows
                else:
                    assert rows == baseline, (
                        f"rows diverge with rewrite={rewrite}, "
                        f"fuse={fuse}, sanitize={sanitize}")


# -- legality: where the pass must decline ------------------------------

def _impure_pred(row):
    print(row[0])  # noqa: T201 - impurity is the point
    return row[1] % 2 == 0


def test_impure_predicate_declines_pushdown():
    ex = PRehash.by(PScan("wide_edges"), _vkey)
    root = PCollect(children=(PFilter.over(ex, _impure_pred),))
    new_root, decisions = rewrite_plan(
        root, table_arity={"wide_edges": 8})
    assert new_root is root
    declined = [d for d in decisions if d.kind == "filter-pushdown"]
    assert declined and not any(d.applied for d in declined)
    assert any("pure" in d.reason for d in declined)


class _UpdateEmitter:
    """A delta-aware UDF declared to emit only δ updates."""

    name = "upd"
    table_valued = False
    emits_polarity = frozenset({DeltaOp.UPDATE})

    def __call__(self, delta):
        return ()


def _ident(row):
    return row


def _wide_from_narrow(row):
    return (row[0], row[1], row[2])


def test_update_polarity_declines_narrowing():
    """δ-update streams may carry key-only rows narrower than the
    declared width; truncating them would corrupt the stream."""
    updates = PApply(udf_factory=_UpdateEmitter, arg_fn=_ident,
                     delta_aware=True, children=(PScan("t"),))
    wide = PProject.over(updates, _wide_from_narrow)
    ex = PRehash.by(wide, _vkey)
    root = PCollect(children=(PProject.over(ex, _vkey),))
    new_root, decisions = rewrite_plan(root, table_arity={"t": 3})
    assert new_root is root
    declined = [d for d in decisions if d.kind == "narrow-exchange"]
    assert declined and not any(d.applied for d in declined)
    assert any("insert-only" in d.reason for d in declined)


def test_rewrite_report_matches_rewrite_plan():
    cluster, plan, _ = _wide_builder()
    arity = {n: len(cluster.catalog.get(n).schema.fields)
             for n in cluster.catalog.names()}
    report = rewrite_report(plan.root, table_arity=arity)
    applied = [r for r in report if r["applied"]]
    assert {r["kind"] for r in applied} == {"filter-pushdown",
                                            "narrow-exchange"}
    for r in report:
        assert r["path"] and r["reason"]
