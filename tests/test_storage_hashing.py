"""Unit + property tests for stable hashing and the consistent-hash ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.storage import HashRing, stable_hash

keys = st.one_of(st.integers(), st.text(max_size=20), st.booleans(),
                 st.tuples(st.integers(), st.integers()))


class TestStableHash:
    @given(keys)
    def test_deterministic(self, key):
        assert stable_hash(key) == stable_hash(key)

    def test_int_float_key_equivalence(self):
        """SQL key semantics: partitioning must not split 1 and 1.0."""
        assert stable_hash(1) == stable_hash(1.0)
        assert stable_hash(-3) == stable_hash(-3.0)

    def test_distinct_types_distinct_hashes(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)

    def test_none_hashes(self):
        assert stable_hash(None) == stable_hash(None)

    def test_tuple_hash_order_sensitive(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    @given(st.integers())
    def test_64_bit_range(self, key):
        assert 0 <= stable_hash(key) < (1 << 64)


class TestHashRing:
    def test_requires_nodes(self):
        with pytest.raises(ReproError):
            HashRing([])

    def test_primary_is_first_replica(self):
        ring = HashRing(range(4))
        for k in range(50):
            assert ring.primary(k) == ring.replicas(k, 3)[0]

    def test_replicas_distinct(self):
        ring = HashRing(range(5))
        for k in range(50):
            reps = ring.replicas(k, 3)
            assert len(reps) == len(set(reps)) == 3

    def test_replication_clipped_to_cluster_size(self):
        ring = HashRing(range(2))
        assert len(ring.replicas("k", 5)) == 2

    def test_duplicate_node_rejected(self):
        ring = HashRing([0, 1])
        with pytest.raises(ReproError):
            ring.add_node(0)

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(ReproError):
            HashRing([0]).remove_node(7)

    def test_balance(self):
        """No node should own a wildly disproportionate share of keys."""
        ring = HashRing(range(8), virtual_nodes=128)
        counts = {n: 0 for n in range(8)}
        total = 4000
        for k in range(total):
            counts[ring.primary(k)] += 1
        for n, c in counts.items():
            assert 0.4 * total / 8 < c < 2.2 * total / 8, (n, counts)

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_monotonicity_on_node_removal(self, key):
        """Removing a node only moves keys that node owned (consistency)."""
        ring = HashRing(range(6))
        before = ring.primary(key)
        ring.remove_node(3)
        after = ring.primary(key)
        if before != 3:
            assert after == before

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_failed_primary_falls_to_old_replica(self, key):
        """The takeover node for a key was already in its replica set."""
        ring = HashRing(range(6))
        replicas_before = ring.replicas(key, 3)
        primary = replicas_before[0]
        ring.remove_node(primary)
        assert ring.primary(key) == replicas_before[1]


class TestRingSnapshot:
    def test_snapshot_isolated_from_ring_changes(self):
        ring = HashRing(range(4))
        snap = ring.snapshot()
        owners_before = {k: snap.primary(k) for k in range(100)}
        ring.remove_node(2)
        ring.add_node(9)
        assert {k: snap.primary(k) for k in range(100)} == owners_before

    def test_mark_failed_reroutes(self):
        snap = HashRing(range(4)).snapshot()
        victims = [k for k in range(200) if snap.primary(k) == 2]
        assert victims, "expected node 2 to own some keys"
        snap.mark_failed(2)
        assert 2 not in snap.live_nodes()
        for k in victims:
            assert snap.primary(k) != 2

    def test_original_replicas_ignore_failure(self):
        snap = HashRing(range(4)).snapshot()
        orig = snap.original_replicas("some-key", 3)
        snap.mark_failed(orig[0])
        assert snap.original_replicas("some-key", 3) == orig

    def test_all_failed_raises(self):
        snap = HashRing([0]).snapshot()
        snap.mark_failed(0)
        with pytest.raises(ReproError):
            snap.primary("k")
