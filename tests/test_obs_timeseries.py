"""Live-telemetry sampler: cadence, clock grid, rings, registry hygiene."""

import pytest

from repro.cluster import Cluster
from repro.datasets import dbpedia_like
from repro.algorithms import run_pagerank
from repro.obs import ObsContext, explain_analyze
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TelemetrySampler
from repro.runtime import ExecOptions


class FakeObs:
    """The slice of ObsContext the sampler reads."""

    def __init__(self):
        self._exchange_stats = {"x0": [2, 100, 5], "x1": [1, 50, 3]}
        self._ops = []
        self.peak = 0

    def take_inflight_peak(self):
        return self.peak


class MemoOp:
    def __init__(self, hits, misses):
        self.memo_hits = hits
        self.memo_misses = misses


class TestSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetrySampler(MetricsRegistry(), interval=0)
        with pytest.raises(ValueError):
            TelemetrySampler(MetricsRegistry(), interval=-1.0)

    def test_sample_populates_stratum_series(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(reg)
        s.sample_stratum(FakeObs(), stratum=0, seconds=0.5, bytes_sent=256,
                         delta_count=7, mutable_size=21,
                         tuples_processed=100)
        assert reg.series("telemetry.stratum.seconds").points == [(0, 0.5)]
        assert reg.series("telemetry.stratum.delta_count").points == [(0, 7)]
        assert reg.series("telemetry.stratum.mutable_size").points == [(0, 21)]
        assert reg.series("telemetry.stratum.bytes_sent").points == [(0, 256)]
        assert reg.series("telemetry.stratum.tuples").points == [(0, 100)]
        # Exchange tallies are summed across channels.
        assert reg.series("telemetry.net.messages_total").points == [(0, 3)]
        assert reg.series("telemetry.net.bytes_total").points == [(0, 150)]
        assert reg.series("telemetry.net.deltas_total").points == [(0, 8)]
        assert reg.histogram("telemetry.stratum.seconds_hist").count == 1
        assert reg.counter("telemetry.sampler.samples").value == 1

    def test_one_sample_per_stratum_cadence(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(reg)
        for k in range(5):
            s.sample_stratum(FakeObs(), stratum=k, seconds=0.1,
                             bytes_sent=0, delta_count=10 - k,
                             mutable_size=10, tuples_processed=1)
        assert s.samples == 5
        assert reg.series("telemetry.stratum.delta_count").points == [
            (0, 10), (1, 9), (2, 8), (3, 7), (4, 6)]

    def test_clock_grid_emits_one_tick_per_interval(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(reg, interval=1.0)
        s.sample_stratum(FakeObs(), 0, seconds=2.5, bytes_sent=0,
                         delta_count=5, mutable_size=5, tuples_processed=0)
        # Crossed t=1.0 and t=2.0.
        assert s.ticks == 2
        assert reg.series("telemetry.clock.delta_count").points == [
            (0, 5), (1, 5)]
        s.sample_stratum(FakeObs(), 1, seconds=1.0, bytes_sent=0,
                         delta_count=3, mutable_size=5, tuples_processed=0)
        # Now at 3.5: crossed t=3.0 only.
        assert s.ticks == 3
        assert reg.series("telemetry.clock.stratum").points == [
            (0, 0), (1, 0), (2, 1)]

    def test_clock_grid_flood_is_bounded(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(reg, interval=1.0, max_ticks_per_sample=4)
        s.sample_stratum(FakeObs(), 0, seconds=100.0, bytes_sent=0,
                         delta_count=1, mutable_size=1, tuples_processed=0)
        assert s.ticks == 4
        assert s.ticks_dropped == 96
        # The grid stays aligned: the next boundary is past sim_seconds.
        assert s._next_tick > s.sim_seconds
        s.sample_stratum(FakeObs(), 1, seconds=1.0, bytes_sent=0,
                         delta_count=1, mutable_size=1, tuples_processed=0)
        assert s.ticks == 5
        assert s.ticks_dropped == 96

    def test_series_are_rings(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(reg, capacity=8)
        for k in range(20):
            s.sample_stratum(FakeObs(), k, seconds=0.1, bytes_sent=0,
                             delta_count=k, mutable_size=0,
                             tuples_processed=0)
        series = reg.series("telemetry.stratum.delta_count")
        assert len(series.points) == 8
        assert series.dropped == 12
        assert series.points[0] == (12, 12)
        assert series.points[-1] == (19, 19)

    def test_memo_hit_rate(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(reg)
        obs = FakeObs()
        obs._ops = [(MemoOp(3, 1), None), (MemoOp(0, 4), None),
                    (object(), None)]
        s.sample_stratum(obs, 0, seconds=0.1, bytes_sent=0, delta_count=0,
                         mutable_size=0, tuples_processed=0)
        assert reg.series("telemetry.memo.hit_rate").points == [(0, 3 / 8)]

    def test_inflight_peak_series(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(reg)
        obs = FakeObs()
        obs.peak = 17
        s.sample_stratum(obs, 0, seconds=0.1, bytes_sent=0, delta_count=0,
                         mutable_size=0, tuples_processed=0)
        assert reg.series("telemetry.net.inflight_peak").points == [(0, 17)]

    def test_node_seconds_series(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(reg)
        s.sample_stratum(FakeObs(), 0, seconds=0.2, bytes_sent=0,
                         delta_count=0, mutable_size=0, tuples_processed=0,
                         node_seconds={1: 0.2, 0: 0.1})
        assert reg.series("telemetry.node.n0.stratum_seconds").points == [
            (0, 0.1)]
        assert reg.series("telemetry.node.n1.stratum_seconds").points == [
            (0, 0.2)]


class TestRegistryHygiene:
    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.series("b").append(0, 1)
        reg.reset()
        assert len(reg) == 0

    def test_remove_by_prefix(self):
        reg = MetricsRegistry()
        reg.counter("telemetry.sampler.samples").inc()
        reg.series("telemetry.stratum.seconds").append(0, 1)
        reg.counter("op.n0.tuples_in").inc()
        assert reg.remove("telemetry.") == 2
        assert reg.names() == ["op.n0.tuples_in"]
        assert reg.remove("nothing.") == 0

    def test_series_capacity_on_creation_only(self):
        reg = MetricsRegistry()
        s = reg.series("ring", capacity=2)
        assert reg.series("ring") is s
        for k in range(5):
            s.append(k, k)
        assert s.points == [(3, 3), (4, 4)]
        assert s.dropped == 3
        with pytest.raises(ValueError):
            reg.counter("ring")


class TestHistogramQuantiles:
    def test_quantiles_from_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in [0.3, 0.6, 1.5, 3.0, 100.0]:
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.3 and snap["max"] == 100.0
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["min"] <= snap["p50"] <= snap["max"]
        # p50: the third value sits in the (1, 2] bucket.
        assert snap["p50"] == 2.0
        # The bucket list is (le, count) ascending.
        les = [le for le, _ in snap["buckets"]]
        assert les == sorted(les)
        assert sum(n for _, n in snap["buckets"]) == 5

    def test_quantiles_empty_and_nonpositive(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert h.quantile(0.5) is None
        h.record(0.0)
        h.record(-2.0)
        assert h.underflow == 2
        assert h.quantile(0.5) == h.min
        assert h.bucket_bounds()[0] == (0.0, 2)

    def test_exact_powers_of_two_land_in_their_own_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.record(4.0)   # le=4 bucket: (2, 4]
        h.record(4.1)   # le=8 bucket: (4, 8]
        assert h.bucket_bounds() == [(4.0, 1), (8.0, 1)]


class TestEndToEnd:
    def _run(self, **obs_kwargs):
        cluster = Cluster(4)
        edges = dbpedia_like(120, avg_out_degree=4.0, seed=3)
        cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                             edges, "srcId")
        obs = ObsContext(**obs_kwargs)
        _, metrics = run_pagerank(
            cluster, mode="delta", tol=0.01,
            options=ExecOptions(max_strata=60, obs=obs))
        return obs, metrics

    def test_sampler_runs_at_stratum_cadence(self):
        obs, metrics = self._run()
        assert obs.telemetry is not None
        assert obs.telemetry.samples == metrics.num_iterations
        series = obs.registry.series("telemetry.stratum.delta_count")
        assert len(series.points) == metrics.num_iterations
        # Per-node skew series exist for every node.
        for node in range(4):
            pts = obs.registry.series(
                f"telemetry.node.n{node}.stratum_seconds").points
            assert len(pts) == metrics.num_iterations
        # The sampler's simulated clock integrates per-stratum seconds.
        total = sum(v for _, v in obs.registry.series(
            "telemetry.stratum.seconds").points)
        assert obs.telemetry.sim_seconds == pytest.approx(total)

    def test_telemetry_off_keeps_registry_clean(self):
        obs, _ = self._run(telemetry=False)
        assert obs.telemetry is None
        assert obs.registry.names("telemetry.") == []

    def test_explain_analyze_shows_sparklines(self):
        obs, metrics = self._run()
        text = explain_analyze(obs, metrics)
        assert "live telemetry" in text
        assert "Δ-set" in text
        assert "sampler:" in text
