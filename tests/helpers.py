"""Shared test scaffolding: a standalone exec context and a capture sink."""

from repro.cluster import CostModel, Worker
from repro.common.deltas import Delta
from repro.common.punctuation import Punctuation
from repro.operators import ExecContext, Operator


class Capture(Operator):
    """Terminal operator recording everything it receives."""

    def __init__(self):
        super().__init__("Capture")
        self.deltas = []
        self.puncts = []

    def process(self, delta: Delta, port: int) -> None:
        self.deltas.append(delta)

    def on_punctuation(self, punct: Punctuation, port: int = 0) -> None:
        self.puncts.append(punct)

    def rows(self):
        return [d.row for d in self.deltas]

    def clear(self):
        self.deltas = []
        self.puncts = []


def make_ctx(node_id: int = 0, cost_model: CostModel = None) -> ExecContext:
    worker = Worker(node_id, cost_model or CostModel())
    return ExecContext(worker)


def wire(*chain):
    """Wire operators bottom-up: wire(child, mid, sink) makes child -> mid
    -> sink, opens them all on a fresh context, and returns the context."""
    ctx = make_ctx()
    for lower, upper in zip(chain, chain[1:]):
        upper.add_input(lower)
    for op in chain:
        op.open(ctx)
    return ctx
