"""Flight recorder: breadcrumbs, triggers, bundle dumps, CLI inspection."""

import io
import json

import pytest

from repro.analysis.determinism import check_determinism
from repro.cluster import Cluster
from repro.obs.flight import (ENV_DIR, FORMAT, FlightRecorder, bundle_path,
                              load_bundle, summarize, write_bundle)
from repro.obs.trace import JsonlSink, Tracer
from repro.runtime import (ExecOptions, PFilter, PScan, PhysicalPlan,
                           QueryExecutor)


def _fixed_clock():
    return 1_700_000_000.0


class TestRecorder:
    def test_note_ring_bounds_memory(self):
        rec = FlightRecorder(capacity=4)
        for k in range(10):
            rec.note("tick", k=k)
        assert len(rec.notes) == 4
        assert rec.dropped == 6
        assert [n["k"] for n in rec.notes] == [6, 7, 8, 9]
        # Sequence numbers keep counting across drops.
        assert [n["seq"] for n in rec.notes] == [6, 7, 8, 9]

    def test_on_stratum_breadcrumb(self):
        rec = FlightRecorder()
        rec.on_stratum(3, seconds=0.5, bytes_sent=128, delta_count=9,
                       mutable_size=40, tuples_processed=77)
        note = rec.notes[-1]
        assert note["kind"] == "stratum"
        assert note["stratum"] == 3
        assert note["deltas"] == 9
        assert note["bytes"] == 128

    def test_bundle_is_self_contained(self):
        rec = FlightRecorder(clock=_fixed_clock)
        rec.note("query_start", recursive=True)
        try:
            raise RuntimeError("boom")
        except RuntimeError as exc:
            doc = rec.bundle("exception", error=exc)
        assert doc["format"] == FORMAT
        assert doc["created_unix"] == _fixed_clock()
        assert doc["reason"] == "exception"
        assert doc["notes"][0]["kind"] == "query_start"
        assert doc["error"]["type"] == "RuntimeError"
        assert doc["error"]["message"] == "boom"
        assert any("boom" in line for line in doc["error"]["traceback"])
        assert doc["env"]["python"]
        # JSON-safe end to end.
        json.dumps(doc)

    def test_dump_without_destination_keeps_bundle_in_memory(
            self, monkeypatch):
        monkeypatch.delenv(ENV_DIR, raising=False)
        rec = FlightRecorder()
        assert rec.dump("exception") is None
        assert rec.last_path is None
        assert rec.last_bundle["reason"] == "exception"
        assert rec.dumps == 1

    def test_dump_to_constructor_directory(self, tmp_path):
        rec = FlightRecorder(directory=str(tmp_path))
        rec.note("stratum", stratum=0)
        path = rec.dump("exception")
        assert path is not None and path.startswith(str(tmp_path))
        doc = load_bundle(path)
        assert doc["reason"] == "exception"
        assert rec.last_path == path

    def test_dump_to_env_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        path = FlightRecorder().dump("sanitizer")
        assert path is not None
        assert "-sanitizer" in path
        assert load_bundle(path)["reason"] == "sanitizer"

    def test_bundle_paths_do_not_collide(self, tmp_path):
        first = bundle_path(str(tmp_path), "exception")
        write_bundle({"format": FORMAT}, first)
        # Same millisecond or not, the second path must differ.
        rec = FlightRecorder(directory=str(tmp_path))
        second = rec.dump("exception")
        assert second != first

    def test_load_bundle_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-bundle.json"
        path.write_text('{"benchmark": "wallclock"}\n')
        with pytest.raises(ValueError):
            load_bundle(str(path))


class TestExecutorTriggers:
    def _failing_plan(self, cluster):
        def bad(row):
            raise ValueError("predicate exploded")

        cluster.create_table("t", ["id:Integer"], [(1,), (2,)], "id")
        return PhysicalPlan(PFilter(predicate=bad, children=(PScan("t"),)))

    def test_exception_dumps_bundle(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_DIR, raising=False)
        cluster = Cluster(2)
        plan = self._failing_plan(cluster)
        executor = QueryExecutor(cluster,
                                 ExecOptions(flight_dir=str(tmp_path)))
        with pytest.raises(ValueError) as excinfo:
            executor.execute(plan)
        exc = excinfo.value
        assert exc.rex_flight_path is not None
        doc = load_bundle(exc.rex_flight_path)
        assert doc["reason"] == "exception"
        assert doc["error"]["type"] == "ValueError"
        kinds = {n["kind"] for n in doc["notes"]}
        assert "query_start" in kinds
        assert "exception" in kinds
        assert exc.rex_flight_bundle["reason"] == "exception"

    def test_exception_without_directory_attaches_bundle_only(
            self, monkeypatch):
        monkeypatch.delenv(ENV_DIR, raising=False)
        cluster = Cluster(2)
        plan = self._failing_plan(cluster)
        executor = QueryExecutor(cluster, ExecOptions())
        with pytest.raises(ValueError) as excinfo:
            executor.execute(plan)
        assert excinfo.value.rex_flight_path is None
        assert excinfo.value.rex_flight_bundle["error"]["type"] == "ValueError"

    def test_flight_off_leaves_exception_bare(self, monkeypatch):
        monkeypatch.delenv(ENV_DIR, raising=False)
        cluster = Cluster(2)
        plan = self._failing_plan(cluster)
        executor = QueryExecutor(cluster, ExecOptions(flight=False))
        with pytest.raises(ValueError) as excinfo:
            executor.execute(plan)
        assert not hasattr(excinfo.value, "rex_flight_bundle")

    def test_successful_run_records_strata(self):
        cluster = Cluster(2)
        cluster.create_table("t", ["id:Integer"], [(1,), (2,)], "id")
        plan = PhysicalPlan(PFilter(predicate=lambda r: True,
                                    children=(PScan("t"),)))
        result = QueryExecutor(cluster, ExecOptions()).execute(plan)
        assert result.flight is not None
        strata = [n for n in result.flight.notes if n["kind"] == "stratum"]
        assert len(strata) == result.metrics.num_iterations
        # Nothing dumped on success.
        assert result.flight.dumps == 0

    def test_sanitizer_trip_dumps_bundle(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        from sanitizer_corpus import CASES

        case = CASES[0]  # illegal-delete-annotation -> REX200
        report = case.run()
        assert report.has_errors()
        bundles = list(tmp_path.glob("flight-*-sanitizer*.json"))
        assert len(bundles) == 1
        doc = load_bundle(str(bundles[0]))
        assert doc["reason"] == "sanitizer"
        assert doc["sanitizer"]["violations"] > 0
        codes = summarize(doc)["diagnostic_codes"]
        assert "REX200" in codes


class FakeMetrics:
    def __init__(self, fp):
        self._fp = fp

    def fingerprint(self):
        return self._fp


class FakeResult:
    def __init__(self, rows, fp, flight=None):
        self.rows = rows
        self.metrics = FakeMetrics(fp)
        self.flight = flight


class TestDeterminismTrigger:
    def test_divergence_dumps_bundle(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_DIR, raising=False)
        rec = FlightRecorder()
        rec.note("stratum", stratum=0)

        def run_query(perturb):
            if perturb is None:
                return FakeResult([(1, 0.5)], ("fp",))
            # Every perturbed run returns different rows: a result race.
            return FakeResult([(1, 0.75)], ("fp",), flight=rec)

        outcome = check_determinism(run_query, perturbations=2,
                                    minimize=False,
                                    flight_dir=str(tmp_path))
        assert outcome.has_races
        assert outcome.flight_path is not None
        doc = load_bundle(outcome.flight_path)
        assert doc["reason"] == "determinism"
        kinds = {n["kind"] for n in doc["notes"]}
        # The divergent run's own breadcrumbs ride along.
        assert {"stratum", "determinism"} <= kinds
        codes = summarize(doc)["diagnostic_codes"]
        assert "REX205" in codes

    def test_clean_run_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_DIR, raising=False)

        def run_query(perturb):
            return FakeResult([(1, 0.5)], ("fp",))

        outcome = check_determinism(run_query, perturbations=2,
                                    flight_dir=str(tmp_path))
        assert not outcome.has_races
        assert outcome.flight_path is None
        assert list(tmp_path.iterdir()) == []


class TestTracerClose:
    def test_close_is_idempotent(self):
        tracer = Tracer()
        tracer.instant("stratum_start", "stratum", node=0, stratum=0)
        tracer.close()
        assert tracer.closed
        assert not tracer.enabled
        tracer.close()  # second close is a no-op, not an error
        assert tracer.closed

    def test_emit_after_close_is_dropped(self):
        from repro.obs.trace import RingBufferSink

        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        tracer.instant("a", "stratum", node=0)
        tracer.close()
        tracer.instant("b", "stratum", node=0)
        assert [ev.name for ev in sink.events()] == ["a"]

    def test_jsonl_sink_flushes_borrowed_stream_on_close(self):
        buf = io.StringIO()
        tracer = Tracer(sinks=[JsonlSink(buf)])
        tracer.instant("stratum_start", "stratum", node=0, stratum=0)
        tracer.close()
        # Borrowed streams are flushed, never closed.
        assert not buf.closed
        line = buf.getvalue().strip().splitlines()[0]
        assert json.loads(line)["name"] == "stratum_start"


class TestCliFlight:
    def _write(self, tmp_path):
        rec = FlightRecorder(directory=str(tmp_path), clock=_fixed_clock)
        rec.note("stratum", stratum=0, deltas=5)
        rec.note("stratum", stratum=1, deltas=2)
        try:
            raise RuntimeError("kaboom")
        except RuntimeError as exc:
            return rec.dump("exception", error=exc)

    def test_text_summary(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path)
        assert main(["flight", path]) == 0
        out = capsys.readouterr().out
        assert "reason: exception" in out
        assert "RuntimeError: kaboom" in out
        assert "stratum=1" in out

    def test_json_summary(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path)
        assert main(["flight", "--format", "json", path]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc[0]["path"] == path
        assert doc[0]["reason"] == "exception"
        assert doc[0]["strata_recorded"] == 2

    def test_unreadable_bundle_fails(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "junk.json"
        bad.write_text("{}\n")
        assert main(["flight", str(bad)]) == 2
        assert "junk.json" in capsys.readouterr().err
