"""The schedule-perturbation determinism checker (REX205/REX206).

The benchmark workloads are supposed to be deterministic functions of
their inputs — K perturbed re-executions must agree with the baseline.
The corpus's first-arrival-wins UDA is the positive control: the checker
must flag it and minimize the race to the exchange feeding the group-by.
"""

from repro.algorithms.kmeans import kmeans_plan
from repro.algorithms.pagerank import pagerank_plan
from repro.algorithms.sssp import make_start_table, sssp_plan
from repro.analysis.determinism import (
    Perturbation,
    canonical_rows,
    canonical_value,
    check_determinism,
    exchange_base,
)
from repro.cluster import Cluster
from repro.datasets import dbpedia_like, geo_points, sample_centroids
from repro.runtime import ExecOptions, QueryExecutor

from sanitizer_corpus import _first_value_plan

EDGES = dbpedia_like(120, avg_out_degree=4.0, seed=9)


def _graph_cluster():
    cluster = Cluster(4)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         EDGES, "srcId", replication=2)
    return cluster


class TestBenchmarkWorkloadsAreDeterministic:
    def test_pagerank_no_races(self):
        def run_query(perturb):
            opts = ExecOptions(max_strata=60, feedback_mode="delta",
                               perturb=perturb)
            return QueryExecutor(_graph_cluster(), opts).execute(
                pagerank_plan(mode="delta", tol=0.01))

        outcome = check_determinism(run_query, perturbations=3, seed=0)
        assert not outcome.has_races, outcome.report.format()
        assert outcome.runs == 3
        assert not any(o.rows_diverged for o in outcome.outcomes)

    def test_sssp_no_races(self):
        def run_query(perturb):
            cluster = _graph_cluster()
            make_start_table(cluster, EDGES[0][0])
            opts = ExecOptions(max_strata=200, perturb=perturb)
            return QueryExecutor(cluster, opts).execute(sssp_plan())

        outcome = check_determinism(run_query, perturbations=3, seed=0)
        assert not outcome.has_races, outcome.report.format()

    def test_kmeans_result_rows_stable(self):
        """k-means rows must be schedule-independent; per-stratum delta
        accounting may legitimately vary (REX206 is warning-level)."""
        points = geo_points(120, n_clusters=3, seed=12, spread=0.6)
        centroids = sample_centroids(points, 3, seed=13)

        def run_query(perturb):
            cluster = Cluster(4)
            cluster.create_table("points",
                                 ["pid:Integer", "x:Double", "y:Double"],
                                 points, "pid", replication=2)
            cluster.create_table("centroids0",
                                 ["cid:Integer", "x:Double", "y:Double"],
                                 centroids, "cid")
            opts = ExecOptions(max_strata=120, perturb=perturb)
            return QueryExecutor(cluster, opts).execute(kmeans_plan())

        outcome = check_determinism(run_query, perturbations=3, seed=0)
        assert not outcome.has_races, outcome.report.format()
        assert not any(o.rows_diverged for o in outcome.outcomes)


class TestRaceDetectionAndMinimization:
    def test_order_dependent_uda_flagged_and_minimized(self):
        rows = [(i % 10, i) for i in range(200)]

        def run_query(perturb):
            cluster = Cluster(4)
            cluster.create_table("obs", ["g:Integer", "v:Integer"],
                                 rows, "v")
            opts = ExecOptions(perturb=perturb)
            return QueryExecutor(cluster, opts).execute(_first_value_plan())

        outcome = check_determinism(run_query, perturbations=3, seed=0)
        assert outcome.has_races
        assert "REX205" in outcome.report.codes()
        assert outcome.suspects, "minimization should name the exchange"
        payload = outcome.to_json()
        assert payload["races"] is True
        assert payload["suspects"] == outcome.suspects
        assert isinstance(payload["diagnostics"], dict)


class TestPerturbationPrimitives:
    def test_exchange_base_strips_attempt_suffix(self):
        assert exchange_base("x0.a7") == "x0"
        assert exchange_base("x3") == "x3"

    def test_canonical_value_tolerates_summation_noise(self):
        a = 0.1 + 0.2
        b = 0.3
        assert a != b
        assert canonical_value(a) == canonical_value(b)
        assert canonical_value(float("nan")) == "nan"

    def test_canonical_rows_is_order_insensitive(self):
        rows1 = [(1, 2.0), (3, 4.0)]
        rows2 = [(3, 4.0), (1, 2.0)]
        assert canonical_rows(rows1) == canonical_rows(rows2)

    def test_perturbation_preserves_per_link_fifo(self):
        """Messages on the same (src, dst) link are never reordered."""

        class Msg:
            def __init__(self, src, dst, tag):
                self.src, self.dst, self.exchange = src, dst, "x0"
                self.tag = tag

        class Net:
            def __init__(self, queue):
                self._queue = queue
                self._dead = set()
                self.observer = None

        msgs = ([Msg(0, 1, i) for i in range(5)]
                + [Msg(2, 1, i) for i in range(5)])
        perturb = Perturbation(seed=3)
        net = Net(list(msgs))
        perturb.install(net)
        seen = {}
        while True:
            msg = net.pop()
            if msg is None:
                break
            last = seen.get((msg.src, msg.dst), -1)
            assert msg.tag > last, "per-link FIFO violated"
            seen[(msg.src, msg.dst)] = msg.tag
