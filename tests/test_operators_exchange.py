"""Unit tests for the rehash sender/receiver pair on a live fabric."""

import pytest

from repro.cluster import Cluster
from repro.common import DeltaOp, insert, replace
from repro.common.punctuation import Punctuation
from repro.operators import ExchangeReceiver, ExecContext, RehashSender

from helpers import Capture


def make_exchange(n_nodes=3, batch_size=2, broadcast=False, key_fn=None):
    """One sender on node 0; receivers + captures on every node."""
    cluster = Cluster(n_nodes)
    snapshot = cluster.ring.snapshot()
    captures = {}
    for node in cluster.node_ids():
        ctx = ExecContext(cluster.worker(node), cluster=cluster,
                          snapshot=snapshot)
        recv = ExchangeReceiver("x", expected_senders=1)
        sink = Capture()
        sink.add_input(recv)
        recv.open(ctx)
        sink.open(ctx)
        captures[node] = sink
    sender_ctx = ExecContext(cluster.worker(0), cluster=cluster,
                             snapshot=snapshot)
    sender = RehashSender("x", key_fn=key_fn or (lambda r: (r[0],)),
                          batch_size=batch_size, broadcast=broadcast)
    sender.open(sender_ctx)
    return cluster, snapshot, sender, captures


class TestRouting:
    def test_rows_land_on_primary(self):
        cluster, snapshot, sender, captures = make_exchange()
        for i in range(20):
            sender.receive(insert((i, i * 10)))
        sender.on_punctuation(Punctuation.end_of_stratum(0))
        cluster.network.drain()
        for node, sink in captures.items():
            for row in sink.rows():
                assert snapshot.primary(row[0]) == node

    def test_all_rows_delivered_exactly_once(self):
        cluster, _, sender, captures = make_exchange()
        rows = [(i, i) for i in range(31)]  # not a batch multiple
        for row in rows:
            sender.receive(insert(row))
        sender.on_punctuation(Punctuation.end_of_stratum(0))
        cluster.network.drain()
        got = sorted(r for sink in captures.values() for r in sink.rows())
        assert got == rows

    def test_punctuation_reaches_every_receiver(self):
        cluster, _, sender, captures = make_exchange()
        sender.on_punctuation(Punctuation.end_of_stratum(0))
        cluster.network.drain()
        for sink in captures.values():
            assert sink.puncts == [Punctuation.end_of_stratum(0)]

    def test_replace_with_moved_key_splits(self):
        cluster, snapshot, sender, captures = make_exchange(batch_size=1)
        # Find two keys owned by different nodes.
        a = 0
        b = next(k for k in range(1, 100)
                 if snapshot.primary(k) != snapshot.primary(a))
        sender.receive(insert((a, "v")))
        sender.receive(replace((a, "v"), (b, "v")))
        sender.on_punctuation(Punctuation.end_of_stratum(0))
        cluster.network.drain()
        delete_home = captures[snapshot.primary(a)]
        insert_home = captures[snapshot.primary(b)]
        assert DeltaOp.DELETE in [d.op for d in delete_home.deltas]
        assert (b, "v") in insert_home.rows()

    def test_broadcast_reaches_all(self):
        cluster, _, sender, captures = make_exchange(broadcast=True,
                                                     key_fn=None)
        sender.receive(insert((7, "c")))
        sender.on_punctuation(Punctuation.end_of_stratum(0))
        cluster.network.drain()
        for sink in captures.values():
            assert sink.rows() == [(7, "c")]


class TestPunctuationCounting:
    def test_receiver_waits_for_all_senders(self):
        cluster = Cluster(1)
        snapshot = cluster.ring.snapshot()
        ctx = ExecContext(cluster.worker(0), cluster=cluster,
                          snapshot=snapshot)
        recv = ExchangeReceiver("x", expected_senders=3)
        sink = Capture()
        sink.add_input(recv)
        recv.open(ctx)
        sink.open(ctx)
        from repro.net import Message

        for i in range(2):
            recv.handle_message(Message(src=i, dst=0, exchange="x",
                                        punct=Punctuation.end_of_stratum(0)))
        assert sink.puncts == []
        recv.handle_message(Message(src=2, dst=0, exchange="x",
                                    punct=Punctuation.end_of_stratum(0)))
        assert len(sink.puncts) == 1

    def test_expected_senders_adjustable(self):
        cluster = Cluster(1)
        ctx = ExecContext(cluster.worker(0), cluster=cluster,
                          snapshot=cluster.ring.snapshot())
        recv = ExchangeReceiver("x", expected_senders=3)
        sink = Capture()
        sink.add_input(recv)
        recv.open(ctx)
        sink.open(ctx)
        recv.set_expected_senders(1)
        from repro.net import Message

        recv.handle_message(Message(src=0, dst=0, exchange="x",
                                    punct=Punctuation.end_of_stratum(0)))
        assert len(sink.puncts) == 1
