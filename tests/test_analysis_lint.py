"""Layer-2 linter: each rule on synthetic sources, noqa suppression, and
the lint-clean pin over the repo's own src tree (acceptance criterion)."""

import os
import textwrap

from repro.analysis.lint import lint_paths, lint_source

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def codes(source):
    return sorted({d.code for d in lint_source(textwrap.dedent(source))})


class TestREX101WallClockInChargedPath:
    def test_flags_wall_clock_beside_charges(self):
        assert codes("""
            import time

            def run(worker, n):
                t0 = time.perf_counter()
                worker.charge_cpu(n * 0.001)
                return time.perf_counter() - t0
        """) == ["REX101"]

    def test_from_import_alias_detected(self):
        assert "REX101" in codes("""
            from time import perf_counter

            def run(worker):
                worker.charge_tuples(1)
                return perf_counter()
        """)

    def test_charge_free_timing_is_allowed(self):
        assert codes("""
            import time

            def measure():
                t0 = time.perf_counter()
                work()
                return time.perf_counter() - t0
        """) == []


class TestREX102TimeTime:
    def test_flags_time_time(self):
        assert "REX102" in codes("""
            import time

            def stamp():
                return time.time()
        """)

    def test_perf_counter_is_fine(self):
        assert "REX102" not in codes("""
            import time

            def stamp():
                return time.perf_counter()
        """)


class TestREX103OrderDependentAccumulation:
    def test_flags_loop_accumulation_of_seconds(self):
        assert "REX103" in codes("""
            def total(stats):
                total_seconds = 0.0
                for s in stats:
                    total_seconds += s.seconds
                return total_seconds
        """)

    def test_flags_attribute_targets(self):
        assert "REX103" in codes("""
            def fold(agg, stats):
                for s in stats:
                    agg.sim_seconds += s.sim_seconds
        """)

    def test_int_counters_are_allowed(self):
        assert "REX103" not in codes("""
            def count(stats):
                charged_out = 0
                for s in stats:
                    charged_out += 1
                return charged_out
        """)

    def test_outside_loop_is_allowed(self):
        assert "REX103" not in codes("""
            def finish(metrics, extra):
                metrics.seconds += extra
        """)


class TestREX104HotRecords:
    def test_missing_slots_flagged_in_hot_module(self):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Delta:
                op: str
        """
        diags = lint_source(textwrap.dedent(source),
                            "src/repro/common/deltas.py")
        assert [d.code for d in diags] == ["REX104"]

    def test_missing_frozen_flagged_where_required(self):
        source = """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Punctuation:
                kind: str
        """
        diags = lint_source(textwrap.dedent(source),
                            "src/repro/common/punctuation.py")
        assert [d.code for d in diags] == ["REX104"]

    def test_network_records_need_slots_not_frozen(self):
        source = """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Message:
                src: int
        """
        diags = lint_source(textwrap.dedent(source),
                            "src/repro/net/network.py")
        assert diags == []

    def test_other_modules_unconstrained(self):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Config:
                name: str
        """
        assert lint_source(textwrap.dedent(source),
                           "src/repro/bench/common.py") == []


class TestREX105RecordMutation:
    def test_attribute_assignment_flagged(self):
        assert "REX105" in codes("""
            def tamper(delta):
                delta.row = ()
        """)

    def test_object_setattr_flagged(self):
        assert "REX105" in codes("""
            def tamper(delta):
                object.__setattr__(delta, "op", None)
        """)

    def test_unrelated_names_ignored(self):
        assert "REX105" not in codes("""
            def configure(message):
                message.op = "noop"
        """)


class TestREX106SetIterationRouting:
    def test_flags_set_iteration_driving_send(self):
        assert codes("""
            def route(self, rows):
                targets = set(rows)
                for t in targets:
                    self.send(t)
        """) == ["REX106"]

    def test_tracks_instance_attributes_across_methods(self):
        assert "REX106" in codes("""
            class Sender:
                def __init__(self):
                    self._dirty = set()

                def flush_all(self):
                    for key in self._dirty:
                        self.emit_batch(key)
        """)

    def test_set_comprehension_and_set_algebra(self):
        assert "REX106" in codes("""
            def fan_out(self, rows):
                for dst in {r.dst for r in rows}:
                    self._route(dst)
        """)
        assert "REX106" in codes("""
            def fan_out(self, live, dead):
                survivors = set(live)
                for dst in survivors - dead:
                    self.deposit(dst)
        """)

    def test_sorted_wrapping_is_exempt(self):
        assert "REX106" not in codes("""
            def route(self, rows):
                targets = set(rows)
                for t in sorted(targets):
                    self.send(t)
        """)

    def test_non_routing_bodies_and_lists_are_fine(self):
        assert "REX106" not in codes("""
            def tally(self, rows):
                seen = set(rows)
                for t in seen:
                    count(t)
        """)
        assert "REX106" not in codes("""
            def route(self, rows):
                targets = list(rows)
                for t in targets:
                    self.send(t)
        """)

    def test_noqa_suppresses(self):
        assert codes("""
            def route(self, rows):
                for t in set(rows):  # noqa: REX106
                    self.send(t)
        """) == []


class TestNoqa:
    def test_specific_code_suppressed(self):
        source = """
            import time

            def stamp():
                return time.time()  # noqa: REX102
        """
        assert codes(source) == []

    def test_bare_noqa_suppresses_everything(self):
        source = """
            import time

            def stamp():
                return time.time()  # noqa
        """
        assert codes(source) == []

    def test_wrong_code_does_not_suppress(self):
        source = """
            import time

            def stamp():
                return time.time()  # noqa: REX101
        """
        assert codes(source) == ["REX102"]


class TestREX108ColumnarKernelDictIdioms:
    def test_flags_string_subscript_in_kernel(self):
        assert codes("""
            from repro.operators.blocks import columnar_kernel

            @columnar_kernel
            def transform_block(self, block):
                return [row["col"] for row in block.rows]
        """) == ["REX108"]

    def test_flags_items_loop_in_kernel(self):
        assert codes("""
            @columnar_kernel
            def push_block(self, block, port=0):
                for row in block.rows:
                    for name, value in row.items():
                        self.emit_value(name, value)
        """) == ["REX108"]

    def test_flags_items_comprehension_in_kernel(self):
        assert codes("""
            @columnar_kernel
            def transform_block(self, block):
                return [v for row in block.rows for _, v in row.items()]
        """) == ["REX108"]

    def test_positional_access_is_clean(self):
        assert codes("""
            @columnar_kernel
            def transform_block(self, block):
                col = block.column(1)
                return [row[0] + v for row, v in zip(block.rows, col)]
        """) == []

    def test_unregistered_functions_are_unconstrained(self):
        assert codes("""
            def per_row_helper(row):
                return row["col"]
        """) == []

    def test_items_with_arguments_is_not_a_dict_view(self):
        assert codes("""
            @columnar_kernel
            def push_block(self, block, port=0):
                for entry in self.catalog.items(block):
                    self.route(entry)
        """) == []

    def test_noqa_suppresses(self):
        assert codes("""
            @columnar_kernel
            def transform_block(self, block):
                return [row["col"] for row in block.rows]  # noqa: REX108
        """) == []


class TestRepoIsLintClean:
    """Satellite pin: src/ (including bench/ and hadoop/) stays clean."""

    def test_src_tree_is_clean(self):
        report = lint_paths([SRC])
        assert not report, report.format()

    def test_bench_and_hadoop_are_clean(self):
        report = lint_paths([os.path.join(SRC, "repro", "bench"),
                             os.path.join(SRC, "repro", "hadoop")])
        assert not report, report.format()
