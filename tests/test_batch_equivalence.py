"""Property tests: ``push_batch`` is observationally identical to ``push``.

The batch-vectorized pipeline's contract is that pushing a batch through an
operator is *exactly* ``len(batch)`` per-delta receives in order: identical
output deltas, identical operator state, and an identical charge multiset on
the worker.  These tests drive randomized (seeded) delta streams through
each operator with a specialized ``push_batch`` in both modes and compare
everything observable, then check the executor end-to-end: full queries must
produce bit-identical simulated metrics with ``ExecOptions(batch=True)``
and ``False``.
"""

import random

import pytest

from repro.cluster import CostModel, Worker
from repro.common.deltas import Delta, DeltaOp, delete, insert, replace, update
from repro.common.punctuation import Punctuation
from repro.operators import (
    ApplyFunction,
    ExecContext,
    Filter,
    Fixpoint,
    GroupBy,
    HashJoin,
    Project,
)
from repro.udf import AggregateSpec, Count, Sum
from repro.udf.aggregates import JoinDeltaHandler

from helpers import Capture

EOS = Punctuation.end_of_stratum


# -- randomized, always-valid delta streams ------------------------------

def gen_stream(rng, n, key_space=5, val_space=7, allow_update=False,
               allow_replace=True):
    """A random stream in which DELETE/REPLACE only target present rows."""
    live = []
    out = []
    for _ in range(n):
        roll = rng.random()
        if live and roll < 0.20:
            out.append(delete(live.pop(rng.randrange(len(live)))))
        elif live and allow_replace and roll < 0.40:
            old = live.pop(rng.randrange(len(live)))
            new = (rng.randrange(key_space), rng.randrange(val_space))
            live.append(new)
            out.append(replace(old, new))
        elif allow_update and roll < 0.55:
            out.append(update((rng.randrange(key_space),),
                              payload=rng.choice([1, 2.5, -1.25, 0.5])))
        else:
            row = (rng.randrange(key_space), rng.randrange(val_space))
            live.append(row)
            out.append(insert(row))
    return out


def tallies(worker):
    """The worker's raw charge tallies — the exact multiset of charges."""
    return (
        dict(worker._cpu_tally),
        dict(worker._disk_tally),
        dict(worker._net_in_tally),
        dict(worker._net_out_tally),
        worker.state_bytes,
    )


def run_one(make_op, strata, batch):
    """Feed ``strata`` (a list of per-stratum [(port, deltas)]) through a
    fresh operator in one mode; return every observable."""
    worker = Worker(0, CostModel())
    ctx = ExecContext(worker, batch=batch)
    op, state_fn, ports = make_op()
    sink = Capture()
    sink.add_input(op)
    op.open(ctx)
    sink.open(ctx)
    for stratum, feeds in enumerate(strata):
        for port, deltas in feeds:
            if batch:
                op.push_batch(list(deltas), port)
            else:
                for d in deltas:
                    op.receive(d, port)
        for port in ports:
            op.on_punctuation(EOS(stratum), port)
    return sink.deltas, state_fn(op), tallies(worker)


def assert_equivalent(make_op, strata):
    out_t, state_t, charges_t = run_one(make_op, strata, batch=False)
    out_b, state_b, charges_b = run_one(make_op, strata, batch=True)
    assert out_t == out_b, "output deltas diverge between push and push_batch"
    assert state_t == state_b, "operator state diverges"
    assert charges_t == charges_b, "worker charge multiset diverges"


def split_strata(rng, stream, n_strata):
    """Partition a stream into per-stratum chunks (some possibly empty)."""
    cuts = sorted(rng.randrange(len(stream) + 1) for _ in range(n_strata - 1))
    chunks = []
    prev = 0
    for cut in cuts + [len(stream)]:
        chunks.append(stream[prev:cut])
        prev = cut
    return chunks


# -- per-operator equivalence -------------------------------------------

@pytest.mark.parametrize("seed", range(5))
def test_filter_batch_equivalence(seed):
    rng = random.Random(seed)
    stream = gen_stream(rng, 120)

    def make_op():
        f = Filter(lambda r: r[1] % 2 == 0)
        return f, lambda op: None, [0]

    assert_equivalent(make_op, [[(0, chunk)]
                                for chunk in split_strata(rng, stream, 3)])


@pytest.mark.parametrize("seed", range(5))
def test_project_batch_equivalence(seed):
    rng = random.Random(100 + seed)
    stream = gen_stream(rng, 120, allow_update=True, allow_replace=False)

    def make_op():
        p = Project(lambda r: (r[0], r[-1] * 10))
        return p, lambda op: None, [0]

    assert_equivalent(make_op, [[(0, chunk)]
                                for chunk in split_strata(rng, stream, 3)])


@pytest.mark.parametrize("seed", range(5))
def test_apply_function_batch_equivalence(seed):
    rng = random.Random(200 + seed)
    stream = gen_stream(rng, 80)

    def double(x):
        return x * 2

    def make_op():
        a = ApplyFunction(double, arg_fn=lambda r: (r[1],), mode="extend")
        return a, lambda op: op.calls, [0]

    assert_equivalent(make_op, [[(0, chunk)]
                                for chunk in split_strata(rng, stream, 2)])


@pytest.mark.parametrize("seed", range(5))
def test_groupby_batch_equivalence(seed):
    rng = random.Random(300 + seed)
    stream = gen_stream(rng, 150, allow_update=True)

    def state(op):
        return {k: (g.live, g.last, [dict(s) if isinstance(s, dict) else s
                                     for s in g.states])
                for k, g in op.groups.items()}

    def make_op():
        gb = GroupBy(key_fn=lambda r: (r[0],),
                     specs=[AggregateSpec(Sum(), arg=lambda r: r[1],
                                          output="s")])
        return gb, state, [0]

    assert_equivalent(make_op, [[(0, chunk)]
                                for chunk in split_strata(rng, stream, 4)])


@pytest.mark.parametrize("seed", range(3))
def test_groupby_multi_spec_batch_equivalence(seed):
    rng = random.Random(400 + seed)
    stream = gen_stream(rng, 100, allow_update=False)

    def state(op):
        return {k: (g.live, g.last) for k, g in op.groups.items()}

    def make_op():
        gb = GroupBy(key_fn=lambda r: (r[0],),
                     specs=[AggregateSpec(Sum(), arg=lambda r: r[1],
                                          output="s"),
                            AggregateSpec(Count(), output="c")])
        return gb, state, [0]

    assert_equivalent(make_op, [[(0, chunk)]
                                for chunk in split_strata(rng, stream, 3)])


@pytest.mark.parametrize("seed", range(5))
def test_hashjoin_batch_equivalence(seed):
    rng = random.Random(500 + seed)
    left = gen_stream(rng, 60, key_space=4)
    right = gen_stream(rng, 60, key_space=4)

    def make_op():
        j = HashJoin(left_key=lambda r: (r[0],), right_key=lambda r: (r[0],),
                     handler=None)
        return j, lambda op: dict(op.buckets), [0, 1]

    chunks_l = split_strata(rng, left, 2)
    chunks_r = split_strata(rng, right, 2)
    strata = [[(0, cl), (1, cr)] for cl, cr in zip(chunks_l, chunks_r)]
    assert_equivalent(make_op, strata)


class _SummingHandler(JoinDeltaHandler):
    """Minimal PRAgg-shaped handler: accumulates on the right bucket and
    fans an UPDATE out per left row."""

    name = "SummingHandler"

    def update(self, left_bucket, right_bucket, delta, side):
        if delta.op is DeltaOp.INSERT and side == 0:
            left_bucket.append(delta.row)
            return []
        total = (right_bucket.pop()[0] if right_bucket else 0.0)
        total += delta.row[1]
        right_bucket.append((total,))
        return [Delta(DeltaOp.UPDATE, (row[1],), payload=total)
                for row in left_bucket]


@pytest.mark.parametrize("seed", range(5))
def test_hashjoin_handler_batch_equivalence(seed):
    rng = random.Random(600 + seed)
    edges = [insert((rng.randrange(4), rng.randrange(6))) for _ in range(30)]
    probes = [insert((rng.randrange(4), rng.random())) for _ in range(60)]

    def make_op():
        j = HashJoin(left_key=lambda r: (r[0],), right_key=lambda r: (r[0],),
                     handler=_SummingHandler(), handler_side=None)
        return j, lambda op: dict(op.buckets), [0, 1]

    strata = [[(0, edges)], [(1, probes)]]
    assert_equivalent(make_op, strata)


@pytest.mark.parametrize("seed", range(5))
def test_fixpoint_keyed_batch_equivalence(seed):
    rng = random.Random(700 + seed)
    stream = gen_stream(rng, 120, key_space=6)

    def state(op):
        return (dict(op.state), list(op.pending), op.admitted_this_stratum)

    def make_op():
        fp = Fixpoint(key_fn=lambda r: (r[0],), semantics="keyed")
        return fp, state, []

    # No punctuation: the fixpoint's pending set is drained by the driver,
    # so compare it directly after the pushes.
    assert_equivalent(make_op, [[(0, stream)]])


@pytest.mark.parametrize("semantics", ["set", "bag"])
def test_fixpoint_other_semantics_batch_equivalence(semantics):
    rng = random.Random(42)
    stream = [insert((rng.randrange(5), rng.randrange(3)))
              for _ in range(80)]

    def state(op):
        return (list(op.pending), op.admitted_this_stratum)

    def make_op():
        fp = Fixpoint(semantics=semantics)
        return fp, state, []

    assert_equivalent(make_op, [[(0, stream)]])


# -- dataclass layout satellites ----------------------------------------

def test_delta_and_punctuation_are_slotted_frozen():
    d = insert((1, 2))
    assert not hasattr(d, "__dict__")
    with pytest.raises(Exception):
        d.row = (3,)
    p = EOS(0)
    assert not hasattr(p, "__dict__")
    with pytest.raises(Exception):
        p.stratum = 5


def test_delta_validation_still_enforced():
    with pytest.raises(ValueError):
        Delta(DeltaOp.REPLACE, (1,))                  # missing old
    with pytest.raises(ValueError):
        Delta(DeltaOp.INSERT, (1,), old=(2,))         # stray old
    with pytest.raises(ValueError):
        Delta(DeltaOp.INSERT, (1,), payload=3)        # stray payload


# -- executor end-to-end ------------------------------------------------

def test_executor_metrics_identical_between_modes():
    from repro.bench.wallclock import (
        _metrics_fingerprint,
        _pagerank_setup,
        _sssp_setup,
    )
    from repro.runtime.executor import ExecOptions

    for setup in (lambda: _pagerank_setup(120, 4.0, 4, 11),
                  lambda: _sssp_setup(120, 4.0, 4, 11)):
        fps = []
        for batch in (False, True):
            fps.append(_metrics_fingerprint(setup()(ExecOptions(batch=batch))))
        assert fps[0] == fps[1]
