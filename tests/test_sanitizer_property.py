"""Property test: full sanitization + mid-run failure + recovery is exact.

For every benchmark workload (PageRank, SSSP, k-means) and a battery of
seeds, run the query on a randomized small input under ``sanitize='full'``
with a node failure injected mid-run, and require

* the recovered result to match the independent reference oracle, and
* the sanitizer to report zero violations — the recovery path itself must
  satisfy every runtime invariant it is checked against.

Plus the zero-overhead-of-observation contract: the sanitizer must never
perturb the simulation, so the metrics fingerprint is bit-identical across
``off`` / ``sample`` / ``full``.
"""

import pytest

from repro.algorithms import (
    kmeans_reference,
    make_start_table,
    pagerank_reference,
    sssp_reference,
)
from repro.algorithms.kmeans import kmeans_plan
from repro.algorithms.pagerank import pagerank_plan
from repro.algorithms.sssp import sssp_plan
from repro.cluster import Cluster
from repro.datasets import dbpedia_like, geo_points, sample_centroids
from repro.runtime import ExecOptions, FailureSpec, QueryExecutor

SEEDS = list(range(7))


def _failure_opts(seed, **kw):
    return ExecOptions(sanitize="full",
                       failure=FailureSpec(after_stratum=2 + seed % 3),
                       recovery="incremental", **kw)


def _run_pagerank(seed, opts):
    edges = dbpedia_like(40 + 5 * seed, avg_out_degree=3.5, seed=200 + seed)
    cluster = Cluster(4)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=2)
    # tol=0.0 converges by float exactness; resume recovery replays the
    # convergence tail, so the cap must leave room for it.
    opts.max_strata = 200
    opts.feedback_mode = "delta"
    result = QueryExecutor(cluster, opts).execute(
        pagerank_plan(mode="delta", tol=0.0))
    return edges, result


@pytest.mark.parametrize("seed", SEEDS)
def test_pagerank_recovers_exactly_under_full_sanitize(seed):
    edges, result = _run_pagerank(seed, _failure_opts(seed))
    scores = {row[0]: row[1] for row in result.rows}
    expected = pagerank_reference(edges)
    assert set(scores) == set(expected)
    for v in expected:
        assert scores[v] == pytest.approx(expected[v], rel=1e-6), v
    assert not result.sanitizer.report.has_errors(), \
        result.sanitizer.report.format()
    assert result.metrics.recovery_seconds > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_sssp_recovers_exactly_under_full_sanitize(seed):
    edges = dbpedia_like(60 + 8 * seed, avg_out_degree=4.0, seed=300 + seed)
    cluster = Cluster(4)
    cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                         edges, "srcId", replication=2)
    source = edges[0][0]
    make_start_table(cluster, source)
    opts = _failure_opts(seed)
    opts.max_strata = 200
    result = QueryExecutor(cluster, opts).execute(sssp_plan())
    got = {row[0]: row[2] for row in result.rows}
    assert got == sssp_reference(edges, source)
    assert not result.sanitizer.report.has_errors(), \
        result.sanitizer.report.format()
    assert result.metrics.recovery_seconds > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_kmeans_recovers_exactly_under_full_sanitize(seed):
    points = geo_points(80 + 10 * seed, n_clusters=3, seed=400 + seed,
                        spread=0.6)
    centroids = sample_centroids(points, 3, seed=500 + seed)
    cluster = Cluster(4)
    # Keyed + replicated: a keyless table round-robins rows to a single
    # owner, which is unrecoverable by design.
    cluster.create_table("points", ["pid:Integer", "x:Double", "y:Double"],
                         points, "pid", replication=2)
    cluster.create_table("centroids0",
                         ["cid:Integer", "x:Double", "y:Double"],
                         centroids, "cid")
    opts = _failure_opts(seed)
    opts.max_strata = 120
    result = QueryExecutor(cluster, opts).execute(kmeans_plan())
    got = {row[0]: (row[1], row[2]) for row in result.rows}
    expected, _, _ = kmeans_reference(points, centroids)
    live = {cid: pos for cid, pos in got.items() if pos != (None, None)}
    for cid, (x, y) in expected.items():
        if cid in live:
            assert live[cid][0] == pytest.approx(x, abs=1e-6)
            assert live[cid][1] == pytest.approx(y, abs=1e-6)
    assert not result.sanitizer.report.has_errors(), \
        result.sanitizer.report.format()


class TestFingerprintInvariance:
    """sanitize level must not perturb the simulation at all."""

    def _fingerprint(self, level):
        edges = dbpedia_like(120, avg_out_degree=4.0, seed=21)
        cluster = Cluster(4)
        cluster.create_table("graph", ["srcId:Integer", "destId:Integer"],
                             edges, "srcId", replication=2)
        opts = ExecOptions(sanitize=level, max_strata=60,
                           feedback_mode="delta")
        result = QueryExecutor(cluster, opts).execute(
            pagerank_plan(mode="delta", tol=0.01))
        return result.metrics.fingerprint()

    def test_bit_identical_across_levels(self):
        off = self._fingerprint("off")
        assert self._fingerprint("sample") == off
        assert self._fingerprint("full") == off
