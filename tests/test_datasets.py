"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    dbpedia_like,
    geo_points,
    lineitem,
    sample_centroids,
    twitter_like,
)


def degree_stats(edges):
    out_deg, in_deg = {}, {}
    for s, d in edges:
        out_deg[s] = out_deg.get(s, 0) + 1
        in_deg[d] = in_deg.get(d, 0) + 1
    return out_deg, in_deg


class TestDbpediaLike:
    def test_deterministic(self):
        assert dbpedia_like(500, seed=1) == dbpedia_like(500, seed=1)
        assert dbpedia_like(500, seed=1) != dbpedia_like(500, seed=2)

    def test_every_vertex_has_in_and_out_edges(self):
        edges = dbpedia_like(400)
        out_deg, in_deg = degree_stats(edges)
        for v in range(400):
            assert out_deg.get(v, 0) >= 1, f"vertex {v} has no out-edges"
            assert in_deg.get(v, 0) >= 1, f"vertex {v} has no in-edges"

    def test_no_self_loops(self):
        assert all(s != d for s, d in dbpedia_like(300))

    def test_in_degree_skew(self):
        """Power-law-ish: the top 1% of vertices attract a fat share."""
        edges = dbpedia_like(1000, avg_out_degree=10)
        _, in_deg = degree_stats(edges)
        degrees = sorted(in_deg.values(), reverse=True)
        top = sum(degrees[:10])
        assert top > 0.08 * len(edges)

    def test_size_scales(self):
        small = dbpedia_like(200, avg_out_degree=5)
        big = dbpedia_like(200, avg_out_degree=15)
        assert len(big) > len(small)


class TestTwitterLike:
    def test_deterministic(self):
        assert twitter_like(500, seed=3) == twitter_like(500, seed=3)

    def test_start_vertex_chain_delays_frontier(self):
        """BFS from the start vertex: tiny frontier for the chain hops,
        explosion once the core is reached (Figure 9b's shape)."""
        from repro.algorithms.reference import sssp_reference

        edges = twitter_like(2000, seed=5, chain_hops=6)
        dist = sssp_reference(edges, 0)
        sizes = {}
        for v, d in dist.items():
            sizes[d] = sizes.get(d, 0) + 1
        # Hops 1..6 stay on the chain (size 1); after the core, explosion.
        for hop in range(1, 6):
            assert sizes.get(hop, 0) <= 3
        explosion = max(sizes.get(7, 0), sizes.get(8, 0), sizes.get(9, 0))
        assert explosion > 50

    def test_all_vertices_covered(self):
        edges = twitter_like(400)
        out_deg, in_deg = degree_stats(edges)
        for v in range(400):
            assert out_deg.get(v, 0) >= 1
            assert in_deg.get(v, 0) >= 1


class TestGeoPoints:
    def test_count_and_shape(self):
        pts = geo_points(100, n_clusters=4)
        assert len(pts) == 100
        assert all(len(p) == 3 for p in pts)
        assert [p[0] for p in pts] == list(range(100))

    def test_replication_enlarges(self):
        assert len(geo_points(50, replicate=10)) == 500

    def test_deterministic(self):
        assert geo_points(50, seed=9) == geo_points(50, seed=9)

    def test_clustered_structure(self):
        """Points should be far tighter around their mixture centers than a
        uniform cloud would be."""
        pts = np.array([(x, y) for _, x, y in
                        geo_points(500, n_clusters=3, spread=0.5, seed=2)])
        from repro.algorithms.reference import kmeans_reference

        cents, assign, _ = kmeans_reference(
            [(i, float(x), float(y)) for i, (x, y) in enumerate(pts)],
            [(0, *pts[0]), (1, *pts[100]), (2, *pts[200])])
        within = 0.0
        for i, (x, y) in enumerate(pts):
            cx, cy = cents[assign[i]]
            within += (x - cx) ** 2 + (y - cy) ** 2
        total_var = float(((pts - pts.mean(axis=0)) ** 2).sum())
        # K-means over genuinely clustered data must explain most variance.
        assert within < 0.5 * total_var


class TestSampleCentroids:
    def test_samples_from_points(self):
        pts = geo_points(100)
        cents = sample_centroids(pts, 5)
        assert len(cents) == 5
        coords = {(x, y) for _, x, y in pts}
        assert all((x, y) in coords for _, x, y in cents)
        assert [c[0] for c in cents] == list(range(5))

    def test_k_clipped(self):
        assert len(sample_centroids(geo_points(3), 10)) == 3


class TestLineitem:
    def test_row_count(self):
        assert len(lineitem(1000)) == 1000

    def test_deterministic(self):
        assert lineitem(200, seed=1) == lineitem(200, seed=1)

    def test_column_domains(self):
        rows = lineitem(500)
        for orderkey, linenumber, qty, price, disc, tax in rows:
            assert 1 <= linenumber <= 7
            assert 1 <= qty <= 50
            assert 0.0 <= tax <= 0.08
            assert 0.0 <= disc <= 0.10

    def test_selection_selectivity(self):
        """linenumber > 1 keeps a substantial but partial fraction."""
        rows = lineitem(2000)
        kept = sum(1 for r in rows if r[1] > 1)
        assert 0.4 * len(rows) < kept < 0.9 * len(rows)
