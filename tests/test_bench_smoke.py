"""Fast smoke tests for the figure harness (full runs live in benchmarks/)."""

import pytest

from repro.bench import ALL_FIGURES
from repro.bench.common import (
    FigureResult,
    Series,
    fresh_cluster,
    scaled_cost_model,
    speedup,
)
from repro.cluster import CostModel


class TestCommonHelpers:
    def test_series_accessors(self):
        s = Series("x", [1.0, 2.0, 3.0])
        assert s.total() == 6.0
        assert s.last() == 3.0

    def test_figure_result_get(self):
        fig = FigureResult("F", "t", series=[Series("a", [1.0])])
        assert fig.get("a").values == [1.0]
        with pytest.raises(KeyError):
            fig.get("missing")

    def test_format_table_contains_everything(self):
        fig = FigureResult("Figure X", "title",
                           series=[Series("line", [1.0, 2.0])],
                           headline={"ratio": 2.0},
                           notes=["a note"])
        text = fig.format_table()
        assert "Figure X" in text and "line" in text
        assert "ratio = 2.000" in text and "a note" in text

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_scaled_cost_model_divides_fixed_costs(self):
        base = CostModel()
        scaled = scaled_cost_model(100.0, base)
        assert scaled.hadoop_job_startup == base.hadoop_job_startup / 100
        assert scaled.rex_stratum_overhead == base.rex_stratum_overhead / 100
        assert scaled.net_latency == base.net_latency / 100
        # Work costs untouched: same ruler for per-tuple economics.
        assert scaled.cpu_tuple_cost == base.cpu_tuple_cost
        assert scaled.hadoop_record_cost == base.hadoop_record_cost

    def test_scale_below_one_clamped(self):
        base = CostModel()
        assert scaled_cost_model(0.1, base).hadoop_job_startup == \
            base.hadoop_job_startup

    def test_fresh_cluster(self):
        assert fresh_cluster(3).num_nodes == 3


class TestFigureRegistry:
    def test_all_eleven_figures_registered(self):
        assert sorted(ALL_FIGURES) == [f"fig{i:02d}" for i in range(2, 13)]

    def test_every_entry_callable(self):
        for fn in ALL_FIGURES.values():
            assert callable(fn)


class TestTinyFigureRuns:
    """Miniature parameterizations keep these in unit-test time."""

    def test_fig04_tiny(self):
        from repro.bench import fig04_simple_agg

        result = fig04_simple_agg.run(n_rows=1500, nodes=3)
        assert result.headline["rex_vs_hadoop_speedup"] > 1.0
        assert len(result.series) == 4

    def test_fig05_tiny(self):
        from repro.bench import fig05_kmeans

        result = fig05_kmeans.run(sizes=(150, 400), nodes=3)
        assert result.headline["speedup_largest"] > 1.0

    def test_fig10_tiny(self):
        from repro.bench import fig10_scalability

        result = fig10_scalability.run(n_vertices=500, degree=6.0,
                                       node_counts=(1, 4))
        times = result.get("REX Δ").values
        assert times[1] < times[0]

    def test_fig12_tiny(self):
        from repro.bench import fig12_recovery

        result = fig12_recovery.run(n_vertices=400, degree=5.0,
                                    failure_points=(2,))
        assert result.get("Incremental").values[0] < \
            result.get("Restart").values[0]
