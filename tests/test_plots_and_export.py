"""Tests for ASCII chart rendering and dataset CSV export."""

import pytest

from repro.bench.common import FigureResult, Series
from repro.bench.plots import bar_chart, line_chart, render
from repro.cli import load_csv
from repro.datasets.export import main as export_main


class TestLineChart:
    def test_renders_all_series_glyphs(self):
        chart = line_chart([Series("a", [1, 2, 3]),
                            Series("b", [3, 2, 1])])
        assert "*" in chart and "o" in chart
        assert "a" in chart and "b" in chart

    def test_log_scale_annotated(self):
        chart = line_chart([Series("a", [1, 1000])], log_y=True)
        assert "log10" in chart

    def test_empty_series_safe(self):
        assert line_chart([]) == "(no data)"
        assert line_chart([Series("x", [])]) == "(no data)"

    def test_constant_series_safe(self):
        chart = line_chart([Series("flat", [5.0, 5.0, 5.0])])
        assert "flat" in chart


class TestBarChart:
    def test_bars_proportional(self):
        chart = bar_chart([Series("big", [10.0]), Series("small", [1.0])])
        lines = chart.splitlines()
        big = next(l for l in lines if "big" in l)
        small = next(l for l in lines if "small" in l)
        assert big.count("█") > small.count("█")

    def test_ignores_multivalue_series(self):
        assert bar_chart([Series("s", [1, 2])]) == \
            "(no single-value series)"


class TestRender:
    def test_mixed_figure(self):
        fig = FigureResult(
            figure="F", title="t",
            series=[Series("curve", [1, 2, 3]),
                    Series("curve (per-iter)", [1, 1, 1]),
                    Series("total", [6.0])])
        out = render(fig)
        assert "cumulative" in out and "per-iteration" in out
        assert "totals" in out


class TestExport:
    @pytest.mark.parametrize("dataset,extra", [
        ("dbpedia", ["--vertices", "200"]),
        ("twitter", ["--vertices", "300"]),
        ("geo", ["--points", "50"]),
        ("lineitem", ["--rows", "40"]),
    ])
    def test_roundtrip_through_cli_loader(self, tmp_path, dataset, extra):
        out = tmp_path / f"{dataset}.csv"
        rc = export_main([dataset, str(out)] + extra)
        assert rc == 0
        schema, rows = load_csv(str(out))
        assert rows, dataset
        assert all(":" in spec for spec in schema)

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        export_main(["geo", str(a), "--points", "30", "--seed", "5"])
        export_main(["geo", str(b), "--points", "30", "--seed", "5"])
        assert a.read_text() == b.read_text()
