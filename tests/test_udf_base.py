"""Unit tests for UDF registration, introspection, and caching."""

import pytest

from repro.common.errors import UDFError
from repro.udf import CachingUDF, UDF, UDFRegistry, introspect_udf, udf
from repro.udf.aggregates import JoinDeltaHandler, WhileDeltaHandler
from repro.udf.builtins import Sum


class TestUdfDecorator:
    def test_wraps_function(self):
        @udf(in_types=["Integer"], out_types=["Integer"])
        def double(x):
            return 2 * x

        assert double(4) == 8
        assert double.name == "double"
        assert double.arity == 1

    def test_arity_enforced(self):
        @udf(in_types=["Integer", "Integer"])
        def add(a, b):
            return a + b

        with pytest.raises(UDFError):
            add(1)

    def test_named_output_fields(self):
        @udf(in_types=["Integer"], out_types=["nbr:Integer", "prdiff:Double"],
             table_valued=True)
        def spread(x):
            return [(x, 0.5)]

        assert [f[0] for f in spread.output_fields] == ["nbr", "prdiff"]

    def test_explicit_name(self):
        @udf(name="MyFn")
        def anything(x):
            return x

        assert anything.name == "MyFn"


class TestIntrospection:
    def test_class_with_evaluate_and_types(self):
        class Tripler:
            in_types = ["Integer"]
            out_types = ["Integer"]

            def evaluate(self, x):
                return 3 * x

        fn = introspect_udf(Tripler)
        assert fn(2) == 6
        assert fn.name == "Tripler"
        assert fn.arity == 1

    def test_plain_callable(self):
        fn = introspect_udf(lambda x: x + 1)
        assert fn(1) == 2

    def test_udf_instance_passthrough(self):
        @udf()
        def f(x):
            return x

        assert introspect_udf(f) is f

    def test_uncallable_rejected(self):
        with pytest.raises(UDFError):
            introspect_udf(object())


class TestCachingUDF:
    def test_caches_deterministic(self):
        calls = []

        @udf(in_types=["Integer"])
        def slow(x):
            calls.append(x)
            return x * x

        cached = CachingUDF(slow)
        assert cached(3) == 9
        assert cached(3) == 9
        assert calls == [3]
        assert cached.hits == 1 and cached.misses == 1
        assert cached.hit_rate == 0.5

    def test_rejects_volatile(self):
        @udf(deterministic=False)
        def rand(x):
            return x

        with pytest.raises(UDFError):
            CachingUDF(rand)

    def test_unhashable_args_bypass(self):
        @udf()
        def head(xs):
            return xs[0]

        cached = CachingUDF(cached_inner := head)
        assert cached([1, 2]) == 1
        assert cached.hits == 0 and cached.misses == 0

    def test_capacity_bound(self):
        @udf()
        def ident(x):
            return x

        cached = CachingUDF(ident, max_entries=2)
        for i in range(5):
            cached(i)
        assert len(cached._cache) == 2


class TestRegistry:
    def test_function_roundtrip(self):
        reg = UDFRegistry()
        reg.register(lambda x: x + 1, name="inc")
        assert reg.function("INC")(1) == 2
        assert reg.is_function("inc")

    def test_caching_applied_on_register(self):
        reg = UDFRegistry(enable_caching=True)
        reg.register(lambda x: x, name="f")
        assert isinstance(reg.function("f"), CachingUDF)

    def test_no_caching_when_disabled(self):
        reg = UDFRegistry(enable_caching=False)
        reg.register(lambda x: x, name="f")
        assert not isinstance(reg.function("f"), CachingUDF)

    def test_aggregator_dispatch(self):
        reg = UDFRegistry()
        reg.register(Sum, name="mysum")
        assert reg.aggregator("mysum").name == "sum"

    def test_builtin_aggregates_resolve(self):
        reg = UDFRegistry()
        for name in ("sum", "count", "min", "max", "avg", "argmin"):
            assert reg.aggregator(name) is not None
            assert reg.is_aggregate(name)

    def test_join_handler_dispatch(self):
        class H(JoinDeltaHandler):
            def update(self, left, right, delta, side):
                return []

        reg = UDFRegistry()
        reg.register(H)
        assert isinstance(reg.join_handler("H"), H)
        assert reg.is_join_handler("h")

    def test_while_handler_dispatch(self):
        class W(WhileDeltaHandler):
            def update(self, rel, delta):
                return []

        reg = UDFRegistry()
        reg.register(W)
        assert isinstance(reg.while_handler("w"), W)

    def test_duplicate_rejected(self):
        reg = UDFRegistry()
        reg.register(lambda x: x, name="f")
        with pytest.raises(UDFError):
            reg.register(lambda x: x, name="F")

    def test_unknown_lookups_raise(self):
        reg = UDFRegistry()
        with pytest.raises(UDFError):
            reg.function("nope")
        with pytest.raises(UDFError):
            reg.aggregator("nope")
        with pytest.raises(UDFError):
            reg.join_handler("nope")
        with pytest.raises(UDFError):
            reg.while_handler("nope")
