"""Unit tests for the compiled expression layer."""

import pytest

from repro.common import Schema
from repro.common.errors import PlanError, SchemaError
from repro.common.schema import SQLType
from repro.operators import (
    BinaryOp,
    BoolOp,
    ColumnRef,
    FuncCall,
    Literal,
    TupleField,
    make_key_fn,
    make_row_fn,
)
from repro.udf import udf

SCHEMA = Schema.of("a:Integer", "b:Double", "s:Varchar")


def ev(expr, row, schema=SCHEMA):
    return expr.bind(schema).eval(row)


class TestColumnAndLiteral:
    def test_column_lookup(self):
        assert ev(ColumnRef("b"), (1, 2.5, "x")) == 2.5

    def test_unknown_column_raises_on_bind(self):
        with pytest.raises(SchemaError):
            ColumnRef("zzz").bind(SCHEMA)

    def test_unbound_eval_raises(self):
        with pytest.raises(PlanError):
            ColumnRef("a").eval((1,))

    def test_literal(self):
        assert ev(Literal(42), (0, 0.0, "")) == 42

    def test_literal_types(self):
        assert Literal(1).output_type() is SQLType.INTEGER
        assert Literal(1.5).output_type() is SQLType.DOUBLE
        assert Literal("x").output_type() is SQLType.VARCHAR
        assert Literal(True).output_type() is SQLType.BOOLEAN


class TestBinaryOps:
    def test_arithmetic(self):
        e = BinaryOp("+", ColumnRef("a"), Literal(2))
        assert ev(e, (3, 0.0, "")) == 5

    def test_nested(self):
        e = BinaryOp("*", BinaryOp("-", ColumnRef("a"), Literal(1)), Literal(10))
        assert ev(e, (4, 0.0, "")) == 30

    def test_division_by_zero_is_null(self):
        e = BinaryOp("/", Literal(1), Literal(0))
        assert ev(e, (0, 0.0, "")) is None

    def test_null_propagation(self):
        e = BinaryOp("+", ColumnRef("a"), Literal(2))
        assert ev(e, (None, 0.0, "")) is None

    def test_comparisons(self):
        assert ev(BinaryOp(">", ColumnRef("a"), Literal(1)), (2, 0.0, "")) is True
        assert ev(BinaryOp("=", ColumnRef("s"), Literal("x")), (0, 0.0, "x")) is True
        assert ev(BinaryOp("<>", Literal(1), Literal(1)), ()) is False

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            BinaryOp("**", Literal(1), Literal(2))

    def test_comparison_type_is_boolean(self):
        assert BinaryOp("<", Literal(1), Literal(2)).output_type() is SQLType.BOOLEAN

    def test_arith_type_widening(self):
        e = BinaryOp("+", ColumnRef("a"), ColumnRef("b"))
        assert e.bind(SCHEMA).output_type(SCHEMA) is SQLType.DOUBLE


class TestBoolOps:
    def test_and_or_not(self):
        t, f = Literal(True), Literal(False)
        assert ev(BoolOp("and", [t, t]), ()) is True
        assert ev(BoolOp("and", [t, f]), ()) is False
        assert ev(BoolOp("or", [f, t]), ()) is True
        assert ev(BoolOp("not", [f]), ()) is True

    def test_sql_three_valued_logic(self):
        t, f, n = Literal(True), Literal(False), Literal(None)
        assert ev(BoolOp("and", [f, n]), ()) is False   # FALSE AND NULL
        assert ev(BoolOp("and", [t, n]), ()) is None    # TRUE AND NULL
        assert ev(BoolOp("or", [t, n]), ()) is True     # TRUE OR NULL
        assert ev(BoolOp("or", [f, n]), ()) is None     # FALSE OR NULL
        assert ev(BoolOp("not", [n]), ()) is None

    def test_not_arity_enforced(self):
        with pytest.raises(PlanError):
            BoolOp("not", [Literal(True), Literal(False)])


class TestFuncCallAndTupleField:
    def test_func_call(self):
        @udf(out_types=["Integer"])
        def triple(x):
            return 3 * x

        e = FuncCall(triple, [ColumnRef("a")])
        assert ev(e, (2, 0.0, "")) == 6
        assert e.output_type() is SQLType.INTEGER

    def test_tuple_field_expansion(self):
        @udf(table_valued=False)
        def pair(x):
            return (x, x + 1)

        base = FuncCall(pair, [ColumnRef("a")])
        assert ev(TupleField(base, 0), (5, 0.0, "")) == 5
        assert ev(TupleField(base, 1), (5, 0.0, "")) == 6

    def test_tuple_field_of_null(self):
        assert ev(TupleField(Literal(None), 0), ()) is None

    def test_columns_collected(self):
        e = BinaryOp("+", ColumnRef("a"), BinaryOp("*", ColumnRef("b"), Literal(2)))
        assert sorted(e.columns()) == ["a", "b"]


class TestCompiledHelpers:
    def test_make_key_fn_single(self):
        key = make_key_fn(SCHEMA, ["a"])
        assert key((7, 0.0, "x")) == (7,)

    def test_make_key_fn_composite(self):
        key = make_key_fn(SCHEMA, ["s", "a"])
        assert key((7, 0.0, "x")) == ("x", 7)

    def test_make_row_fn(self):
        fn = make_row_fn([ColumnRef("s"), BinaryOp("+", ColumnRef("a"), Literal(1))],
                         SCHEMA)
        assert fn((1, 0.0, "q")) == ("q", 2)
