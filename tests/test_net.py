"""Unit tests for the simulated network fabric."""

import pytest

from repro.common import insert, replace, update
from repro.common.errors import ExecutionError
from repro.common.punctuation import Punctuation
from repro.net import Message, SimulatedNetwork


def msg(src=0, dst=1, exchange="x", deltas=None, punct=None, meta=None):
    return Message(src=src, dst=dst, exchange=exchange, deltas=deltas,
                   punct=punct, meta=meta)


class TestMessageSize:
    def test_punct_message_fixed_size(self):
        m = msg(punct=Punctuation.end_of_stratum(0))
        assert m.size_bytes() == 16

    def test_delta_batch_size_grows(self):
        one = msg(deltas=[insert((1, 2.0))]).size_bytes()
        two = msg(deltas=[insert((1, 2.0)), insert((3, 4.0))]).size_bytes()
        assert two > one

    def test_replace_counts_both_images(self):
        ins = msg(deltas=[insert((1, 2.0))]).size_bytes()
        rep = msg(deltas=[replace((1, 1.0), (1, 2.0))]).size_bytes()
        assert rep > ins

    def test_update_counts_payload(self):
        bare = msg(deltas=[insert((1,))]).size_bytes()
        upd = msg(deltas=[update((1,), payload=3.5)]).size_bytes()
        assert upd > bare


class TestDeliveryAndAccounting:
    def test_fifo_dispatch(self):
        net = SimulatedNetwork()
        seen = []
        net.register(1, "x", lambda m: seen.append(m.meta))
        net.send(msg(meta="a"))
        net.send(msg(meta="b"))
        assert net.drain() == 2
        assert seen == ["a", "b"]

    def test_local_sends_free(self):
        net = SimulatedNetwork()
        net.register(0, "x", lambda m: None)
        net.send(msg(src=0, dst=0))
        assert net.total_bytes == 0
        assert net.drain() == 1  # still delivered

    def test_remote_bytes_counted(self):
        net = SimulatedNetwork()
        net.register(1, "x", lambda m: None)
        net.send(msg(deltas=[insert((1, 2.0))]))
        assert net.total_bytes > 0
        assert net.bytes_by_node[0] == net.total_bytes
        assert net.links[(0, 1)].messages == 1

    def test_on_bytes_callback(self):
        calls = []
        net = SimulatedNetwork(on_bytes=lambda s, d, b: calls.append((s, d, b)))
        net.register(1, "x", lambda m: None)
        net.send(msg())
        assert calls and calls[0][:2] == (0, 1)

    def test_duplicate_registration_rejected(self):
        net = SimulatedNetwork()
        net.register(1, "x", lambda m: None)
        with pytest.raises(ExecutionError):
            net.register(1, "x", lambda m: None)

    def test_unknown_handler_raises_at_dispatch(self):
        net = SimulatedNetwork()
        net.send(msg())
        with pytest.raises(ExecutionError):
            net.drain()

    def test_handlers_may_send_more(self):
        net = SimulatedNetwork()
        hops = []

        def relay(m):
            hops.append(m.dst)
            if m.dst == 1:
                net.send(msg(src=1, dst=2, exchange="x"))

        net.register(1, "x", relay)
        net.register(2, "x", relay)
        net.send(msg())
        assert net.drain() == 2
        assert hops == [1, 2]


class TestDeadNodes:
    def test_dead_node_cannot_send(self):
        net = SimulatedNetwork()
        net.register(1, "x", lambda m: None)
        net.unregister_node(0)
        net.send(msg(src=0, dst=1))
        assert net.pending() == 0
        assert net.total_bytes == 0

    def test_mail_for_the_dead_dropped(self):
        net = SimulatedNetwork()
        net.register(1, "x", lambda m: None)
        net.send(msg())
        net.unregister_node(1)
        assert net.pop() is None

    def test_revive(self):
        net = SimulatedNetwork()
        net.unregister_node(0)
        net.revive_node(0)
        net.register(1, "x", lambda m: None)
        net.send(msg(src=0, dst=1))
        assert net.drain() == 1
