"""Table-valued UDFs in RQL: the dependent join (Section 4.2)."""

import pytest

from repro.cluster import Cluster
from repro.rql import RQLSession
from repro.udf import udf


@udf(in_types=["Integer"], out_types=["part:Integer", "half:Integer"],
     table_valued=True, selectivity=2.0)
def split_range(n):
    """Emit (i, i // 2) for each i below n — a fan-out TVF."""
    return [(i, i // 2) for i in range(n)]


@udf(in_types=["Varchar"], out_types=["word:Varchar"], table_valued=True)
def tokenize(text):
    return [(w,) for w in text.split()]


def make_session():
    cluster = Cluster(3)
    cluster.create_table("t", ["id:Integer", "n:Integer", "s:Varchar"],
                         [(1, 3, "a b"), (2, 2, "c"), (3, 0, "d e f")],
                         "id")
    session = RQLSession(cluster)
    session.register(split_range)
    session.register(tokenize)
    return session


class TestDependentJoin:
    def test_fanout_expansion(self):
        session = make_session()
        result = session.execute(
            "SELECT id, split_range(n).{part, half} FROM t")
        expected = sorted(
            (rid, i, i // 2)
            for rid, n in ((1, 3), (2, 2), (3, 0)) for i in range(n))
        assert sorted(result.rows) == expected

    def test_zero_output_rows_drop_input(self):
        session = make_session()
        result = session.execute("SELECT id, split_range(n).{part} FROM t")
        assert all(row[0] != 3 for row in result.rows)  # n=0 emits nothing

    def test_string_tokenizer(self):
        session = make_session()
        result = session.execute("SELECT id, tokenize(s).{word} FROM t")
        expected = sorted([(1, "a"), (1, "b"), (2, "c"),
                           (3, "d"), (3, "e"), (3, "f")])
        assert sorted(result.rows) == expected

    def test_multiple_tvfs_in_one_select(self):
        """The paper: 'this operator even supports calls to multiple
        table-valued functions in the same operation'."""
        session = make_session()
        result = session.execute(
            "SELECT id, split_range(n).{part}, tokenize(s).{word} FROM t")
        # Cross product of both expansions per input row.
        row1 = [r for r in result.rows if r[0] == 1]
        assert sorted(row1) == sorted(
            (1, i, w) for i in range(3) for w in ("a", "b"))

    def test_tvf_feeding_aggregation(self):
        session = make_session()
        result = session.execute(
            "SELECT half, count(*) FROM "
            "(SELECT id, split_range(n).{part, half} FROM t) sub "
            "GROUP BY half")
        counts = dict(result.rows)
        # parts: row1 -> 0,1,2 (halves 0,0,1); row2 -> 0,1 (halves 0,0)
        assert counts == {0: 4, 1: 1}

    def test_filter_on_expanded_column(self):
        session = make_session()
        result = session.execute(
            "SELECT part FROM (SELECT id, split_range(n).{part} FROM t) s "
            "WHERE part > 0")
        assert sorted(result.rows) == [(1,), (1,), (2,)]
